//! Readiness polling over raw file descriptors.
//!
//! The io loops in [`crate::server`] are mio-style readiness-driven state
//! machines over nonblocking sockets.  On Unix the readiness source is
//! `poll(2)`, reached through a direct `extern "C"` declaration — the C
//! library is already linked into every Rust binary on these targets, so
//! this adds no dependency.  On other targets a degraded sleepy poller
//! reports every descriptor ready after a short sleep; the nonblocking
//! state machines treat spurious readiness correctly (reads/writes that
//! would block simply return `WouldBlock`), it just costs latency.

use std::io;
use std::time::Duration;

/// Readable readiness (or a readable-side close).
pub const POLLIN: i16 = 0x001;
/// Writable readiness.
pub const POLLOUT: i16 = 0x004;
/// Error condition (always polled, never requested).
pub const POLLERR: i16 = 0x008;
/// Peer hangup.
pub const POLLHUP: i16 = 0x010;

/// One descriptor's interest set and readiness result, laid out exactly
/// like C's `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// Raw descriptor (ignored by the non-Unix fallback).
    pub fd: i32,
    /// Requested events ([`POLLIN`] / [`POLLOUT`]).
    pub events: i16,
    /// Returned events; also [`POLLERR`] / [`POLLHUP`].
    pub revents: i16,
}

impl PollFd {
    /// Interest in reading `fd` (and, when `write` is set, writing).
    pub fn new(fd: i32, write: bool) -> Self {
        PollFd {
            fd,
            events: POLLIN | if write { POLLOUT } else { 0 },
            revents: 0,
        }
    }

    /// The descriptor is readable or the peer closed/errored (both mean
    /// "call read and let it report what happened").
    pub fn readable(&self) -> bool {
        self.revents & (POLLIN | POLLERR | POLLHUP) != 0
    }

    /// The descriptor is writable (or errored — a write will surface it).
    pub fn writable(&self) -> bool {
        self.revents & (POLLOUT | POLLERR | POLLHUP) != 0
    }
}

#[cfg(unix)]
mod sys {
    use super::PollFd;
    use std::io;
    use std::os::raw::{c_int, c_ulong};

    // SAFETY: `poll` is a POSIX symbol with exactly this signature in the
    // C library every Rust Unix binary links (`nfds_t` is `unsigned long`
    // on the supported targets); declaring it does not execute anything.
    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // SAFETY: `fds` is a valid, exclusively borrowed slice of
        // `#[repr(C)]` pollfd-layout structs; the kernel writes only the
        // `revents` fields of the `fds.len()` entries passed.
        let rc = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_ulong, timeout_ms) };
        if rc < 0 {
            let err = io::Error::last_os_error();
            if err.kind() == io::ErrorKind::Interrupted {
                return Ok(0); // EINTR: treat as a timeout tick
            }
            return Err(err);
        }
        Ok(rc as usize)
    }
}

#[cfg(not(unix))]
mod sys {
    use super::PollFd;
    use std::io;

    pub fn poll_fds(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
        // Degraded fallback: sleep briefly, then report everything ready.
        // Nonblocking sockets make spurious readiness harmless.
        let ms = timeout_ms.clamp(0, 2) as u64;
        if ms > 0 {
            std::thread::sleep(std::time::Duration::from_millis(ms));
        }
        for f in fds.iter_mut() {
            f.revents = f.events;
        }
        Ok(fds.len())
    }
}

/// Blocks until at least one descriptor is ready, the timeout elapses, or
/// a signal interrupts (reported as 0 ready — callers just loop).
pub fn poll_fds(fds: &mut [PollFd], timeout: Duration) -> io::Result<usize> {
    let ms = timeout.as_millis().min(i32::MAX as u128) as i32;
    sys::poll_fds(fds, ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[cfg(unix)]
    fn fd_of(s: &TcpStream) -> i32 {
        use std::os::unix::io::AsRawFd;
        s.as_raw_fd()
    }

    #[cfg(not(unix))]
    fn fd_of(_s: &TcpStream) -> i32 {
        0
    }

    #[test]
    fn poll_reports_readability_after_write() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let mut tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        rx.set_nonblocking(true).unwrap();

        // Nothing written yet: a short poll times out with no readiness.
        let mut fds = [PollFd::new(fd_of(&rx), false)];
        poll_fds(&mut fds, Duration::from_millis(10)).unwrap();

        tx.write_all(b"ping").unwrap();
        tx.flush().unwrap();
        // Readiness must arrive within a generous window.
        let mut ready = false;
        for _ in 0..100 {
            let mut fds = [PollFd::new(fd_of(&rx), false)];
            poll_fds(&mut fds, Duration::from_millis(20)).unwrap();
            if fds[0].readable() {
                ready = true;
                break;
            }
        }
        assert!(ready, "written bytes must make the socket readable");
        let mut r = rx;
        let mut buf = [0u8; 4];
        r.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
    }

    #[test]
    fn poll_reports_writability_of_fresh_socket() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let mut fds = [PollFd::new(fd_of(&tx), true)];
        poll_fds(&mut fds, Duration::from_millis(100)).unwrap();
        assert!(fds[0].writable(), "an idle socket's send buffer has space");
    }
}
