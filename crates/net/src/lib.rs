//! errflow-net: a wire-protocol network frontend for `errflow-serve`.
//!
//! The serve pipeline certifies error-bounded inference in process; this
//! crate puts it on a socket without adding any dependency:
//!
//! * [`proto`] — a compact length-prefixed binary protocol (magic
//!   `EFNP`, versioned 16-byte header, request / response / typed-error
//!   frames) parsed exclusively through the checked little-endian readers
//!   from `errflow_compress`, so forged lengths and truncated frames
//!   surface as typed [`proto::ProtoError`]s, never panics or
//!   over-allocation.
//! * [`poll`] + [`conn`] — readiness-driven nonblocking connection state
//!   machines: partial reads reassemble frames incrementally, partial
//!   writes buffer and resume, `poll(2)` (via a direct libc declaration)
//!   multiplexes many sockets per io thread.
//! * [`server`] — [`server::NetServer`], per-core acceptor/reader threads
//!   with connection limits and idle timeouts, dispatching into the
//!   sharded work-stealing admission queue of
//!   [`errflow_serve::Server`].  Backpressure
//!   ([`errflow_serve::server::ServeError::QueueFull`]) becomes a
//!   *retryable* error frame — never a dropped connection.
//! * [`client`] — [`client::NetClient`], a small blocking client.
//! * Telemetry frames — [`proto::FrameType::MetricsRequest`] /
//!   [`proto::FrameType::HealthRequest`] scrape the live time-series and
//!   SLO plane of `errflow-obs`; they are answered entirely on io
//!   threads, so observation never competes with the request path.
//! * [`loadgen`] — the socket-path twin of the in-process load generator,
//!   reporting client RTT and the frontend's p50 overhead over
//!   in-process dispatch.
//!
//! Responses carry the PR-5 per-stage breakdown extended with `ingress`
//! (first byte → frame decoded) and `egress` (worker fulfilment → frame
//! encoded) so the wire cost is visible per request, not just in
//! aggregate.

pub mod client;
pub mod conn;
pub mod loadgen;
pub mod poll;
pub mod proto;
pub mod server;

pub use client::{NetClient, NetError};
pub use loadgen::{run_net_loadgen, NetBenchSummary};
pub use proto::{
    ErrorCode, ErrorFrame, HistogramDump, MetricsFormat, MetricsRequestFrame, MetricsResponseFrame,
    RequestFrame, ResponseFrame, ScrapePayload, TIER_ALL,
};
pub use server::{NetConfig, NetServer};
