//! Blocking wire-protocol client for the errflow-net frontend.
//!
//! One [`NetClient`] owns one TCP connection and issues requests
//! synchronously: encode → write → read exactly one reply frame.  The
//! load generator runs many clients on closed-loop threads; applications
//! embedding the client get typed errors ([`NetError`]) including the
//! server's own error frames, whose `retryable` flag distinguishes
//! backpressure ([`crate::proto::ErrorCode::QueueFull`]) from hard
//! failures.

use crate::proto::{
    self, ErrorFrame, FrameHeader, FrameType, MetricsFormat, MetricsRequestFrame,
    MetricsResponseFrame, ProtoError, RequestFrame, ResponseFrame, HEADER_LEN,
};
use errflow_obs::slo::SloStatus;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Anything a request can fail with on the client side.
#[derive(Debug)]
pub enum NetError {
    /// Socket-level failure (connect, read, write, timeout).
    Io(std::io::Error),
    /// The server's reply did not parse.
    Proto(ProtoError),
    /// The server answered with a typed error frame.
    Server(ErrorFrame),
}

impl NetError {
    /// True for transient conditions worth retrying (backpressure).
    pub fn retryable(&self) -> bool {
        match self {
            NetError::Server(e) => e.retryable,
            _ => false,
        }
    }
}

impl std::fmt::Display for NetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NetError::Io(e) => write!(f, "io error: {e}"),
            NetError::Proto(e) => write!(f, "protocol error: {e}"),
            NetError::Server(e) => write!(f, "server error: {e}"),
        }
    }
}

impl std::error::Error for NetError {}

impl From<std::io::Error> for NetError {
    fn from(e: std::io::Error) -> Self {
        NetError::Io(e)
    }
}

impl From<ProtoError> for NetError {
    fn from(e: ProtoError) -> Self {
        NetError::Proto(e)
    }
}

/// A synchronous connection to a [`crate::server::NetServer`].
#[derive(Debug)]
pub struct NetClient {
    stream: TcpStream,
}

impl NetClient {
    /// Connects (blocking) with Nagle disabled — frames are latency-bound.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<Self, NetError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(NetClient { stream })
    }

    /// Bounds each blocking read; `None` waits indefinitely.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> Result<(), NetError> {
        self.stream.set_read_timeout(t)?;
        Ok(())
    }

    /// Sends one request and blocks for its reply.  A server error frame
    /// comes back as [`NetError::Server`] — check
    /// [`NetError::retryable`] before giving up, backpressure
    /// (`QueueFull`) keeps the connection usable.
    pub fn request(&mut self, req: &RequestFrame) -> Result<ResponseFrame, NetError> {
        let bytes = proto::encode_request(req)?;
        self.stream.write_all(&bytes)?;
        let (header, body) = self.read_frame()?;
        match header.frame_type {
            FrameType::Response => Ok(proto::decode_response(&body)?),
            FrameType::Error => Err(NetError::Server(proto::decode_error(&body)?)),
            other => Err(NetError::Proto(ProtoError::Corrupt(format!(
                "unexpected reply frame type {other:?}"
            )))),
        }
    }

    /// Scrapes the server's telemetry plane: sends one
    /// [`FrameType::MetricsRequest`] and blocks for the
    /// [`FrameType::MetricsResponse`].  `tier` selects a single retention
    /// tier or [`crate::proto::TIER_ALL`]; `window` caps points per series.
    pub fn scrape(
        &mut self,
        format: MetricsFormat,
        tier: u8,
        window: u32,
    ) -> Result<MetricsResponseFrame, NetError> {
        let req = MetricsRequestFrame {
            format,
            tier,
            window,
        };
        let bytes = proto::encode_metrics_request(&req)?;
        self.stream.write_all(&bytes)?;
        let (header, body) = self.read_frame()?;
        match header.frame_type {
            FrameType::MetricsResponse => Ok(proto::decode_metrics_response(&body)?),
            FrameType::Error => Err(NetError::Server(proto::decode_error(&body)?)),
            other => Err(NetError::Proto(ProtoError::Corrupt(format!(
                "unexpected reply frame type {other:?}"
            )))),
        }
    }

    /// Queries the server's SLO states: one [`FrameType::HealthRequest`]
    /// answered by a [`FrameType::HealthResponse`] listing every installed
    /// objective with its published ok/warn/breach state.
    pub fn health(&mut self) -> Result<Vec<SloStatus>, NetError> {
        let bytes = proto::encode_health_request();
        self.stream.write_all(&bytes)?;
        let (header, body) = self.read_frame()?;
        match header.frame_type {
            FrameType::HealthResponse => Ok(proto::decode_health_response(&body)?),
            FrameType::Error => Err(NetError::Server(proto::decode_error(&body)?)),
            other => Err(NetError::Proto(ProtoError::Corrupt(format!(
                "unexpected reply frame type {other:?}"
            )))),
        }
    }

    fn read_frame(&mut self) -> Result<(FrameHeader, Vec<u8>), NetError> {
        let mut head = [0u8; HEADER_LEN];
        read_full(&mut self.stream, &mut head)?;
        let header = proto::parse_header(&head)?;
        let mut body = vec![0u8; header.body_len];
        read_full(&mut self.stream, &mut body)?;
        Ok((header, body))
    }
}

/// `read_exact` that retries `Interrupted` and maps EOF to a clean error.
fn read_full(stream: &mut TcpStream, buf: &mut [u8]) -> Result<(), NetError> {
    let mut got = 0usize;
    while got < buf.len() {
        match stream.read(&mut buf[got..]) {
            Ok(0) => {
                return Err(NetError::Io(std::io::Error::new(
                    ErrorKind::UnexpectedEof,
                    "server closed mid-frame",
                )))
            }
            Ok(n) => got += n,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(NetError::Io(e)),
        }
    }
    Ok(())
}
