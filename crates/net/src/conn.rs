//! Per-connection state machine: incremental frame reassembly over a
//! nonblocking socket, partial-write buffering, and idle tracking.
//!
//! A [`Conn`] owns one nonblocking [`TcpStream`].  The io loop drives it
//! with readiness events: [`Conn::on_readable`] pulls whatever bytes the
//! kernel has and returns the complete frames they finish (a frame may
//! arrive over many reads — partial headers and bodies are buffered);
//! [`Conn::flush`] pushes pending output until the kernel would block.
//! Nothing here blocks, parses past a declared length, or panics on
//! malformed input — framing errors surface as [`ConnEvent::Malformed`].

use crate::proto::{self, FrameHeader, MetricsRequestFrame, ProtoError, RequestFrame, HEADER_LEN};
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

/// Bytes pulled from the kernel per `read` call.
const READ_CHUNK: usize = 16 * 1024;

/// What a readable event produced.
#[derive(Debug)]
pub enum ConnEvent {
    /// A complete, well-formed request frame, plus the ingress interval
    /// (first byte of this frame seen → frame decoded).
    Request {
        /// The decoded request.
        frame: RequestFrame,
        /// Frame read + decode time.
        ingress: Duration,
    },
    /// A complete metrics scrape request.  Answered on the io thread from
    /// the observability globals — never enters the serve queue.
    Metrics(MetricsRequestFrame),
    /// A complete SLO health probe (empty body), answered like
    /// [`ConnEvent::Metrics`].
    Health,
    /// The stream produced an unparsable frame.  The caller should send a
    /// typed error frame and close once it flushes — framing is lost.
    Malformed(ProtoError),
    /// Peer closed its write side (EOF) or the socket errored.
    Closed,
}

/// One client connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    /// Unparsed input bytes (partial header or body).
    buf: Vec<u8>,
    /// Parsed header of the frame whose body is still arriving.
    pending: Option<FrameHeader>,
    /// When the first byte of the in-progress frame was seen.
    frame_start: Option<Instant>,
    /// Encoded output not yet accepted by the kernel.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    /// Last read or write activity (idle-timeout bookkeeping).
    last_activity: Instant,
    /// Requests submitted whose completions have not yet been encoded.
    pub inflight: usize,
    /// Socket is gone (EOF/error) but the slot lingers until `inflight`
    /// completions have drained.
    pub dead: bool,
    /// Close once `out` drains (set after a malformed-frame error frame).
    pub close_after_flush: bool,
}

impl Conn {
    /// Wraps an accepted stream (made nonblocking here).
    pub fn new(stream: TcpStream) -> std::io::Result<Self> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true)?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
            pending: None,
            frame_start: None,
            out: Vec::new(),
            out_pos: 0,
            last_activity: Instant::now(),
            inflight: 0,
            dead: false,
            close_after_flush: false,
        })
    }

    /// The raw descriptor for readiness polling.
    #[cfg(unix)]
    pub fn fd(&self) -> i32 {
        use std::os::unix::io::AsRawFd;
        self.stream.as_raw_fd()
    }

    /// Non-Unix fallback: the sleepy poller ignores descriptors.
    #[cfg(not(unix))]
    pub fn fd(&self) -> i32 {
        0
    }

    /// Unsent output bytes are pending.
    pub fn wants_write(&self) -> bool {
        self.out_pos < self.out.len()
    }

    /// How long the connection has been idle.
    pub fn idle_for(&self, now: Instant) -> Duration {
        now.duration_since(self.last_activity)
    }

    /// Reads everything the kernel has and returns the events the bytes
    /// complete.  After a [`ConnEvent::Malformed`] no further parsing is
    /// attempted (framing is unsynchronized); after [`ConnEvent::Closed`]
    /// the socket is done.
    pub fn on_readable(&mut self) -> Vec<ConnEvent> {
        let mut events = Vec::new();
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    // Mid-frame disconnect: any partial frame is dropped on
                    // the floor by design — there is nobody to answer.
                    events.push(ConnEvent::Closed);
                    break;
                }
                Ok(n) => {
                    self.last_activity = Instant::now();
                    if self.buf.is_empty() && self.frame_start.is_none() {
                        self.frame_start = Some(Instant::now());
                    }
                    self.buf.extend_from_slice(&chunk[..n]);
                    if !self.drain_frames(&mut events) {
                        break; // malformed: stop reading this connection
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    events.push(ConnEvent::Closed);
                    break;
                }
            }
        }
        events
    }

    /// Parses as many complete frames as `buf` holds.  Returns `false`
    /// once a malformed frame stops the connection.
    fn drain_frames(&mut self, events: &mut Vec<ConnEvent>) -> bool {
        loop {
            let header = match self.pending {
                Some(h) => h,
                None => {
                    if self.buf.len() < HEADER_LEN {
                        return true; // partial header: wait for more bytes
                    }
                    match proto::parse_header(&self.buf[..HEADER_LEN]) {
                        Ok(h) => {
                            self.pending = Some(h);
                            h
                        }
                        Err(e) => {
                            events.push(ConnEvent::Malformed(e));
                            return false;
                        }
                    }
                }
            };
            if self.buf.len() < HEADER_LEN + header.body_len {
                return true; // partial body: wait for more bytes
            }
            let body = &self.buf[HEADER_LEN..HEADER_LEN + header.body_len];
            let event = match header.frame_type {
                proto::FrameType::Request => match proto::decode_request(body) {
                    Ok(frame) => ConnEvent::Request {
                        frame,
                        ingress: self.frame_start.map_or(Duration::ZERO, |t0| t0.elapsed()),
                    },
                    Err(e) => ConnEvent::Malformed(e),
                },
                proto::FrameType::MetricsRequest => match proto::decode_metrics_request(body) {
                    Ok(frame) => ConnEvent::Metrics(frame),
                    Err(e) => ConnEvent::Malformed(e),
                },
                proto::FrameType::HealthRequest => match proto::decode_health_request(body) {
                    Ok(()) => ConnEvent::Health,
                    Err(e) => ConnEvent::Malformed(e),
                },
                // Clients must not send response/error frames.
                other => ConnEvent::Malformed(ProtoError::Corrupt(format!(
                    "unexpected {other:?} frame from client"
                ))),
            };
            let malformed = matches!(event, ConnEvent::Malformed(_));
            events.push(event);
            self.buf.drain(..HEADER_LEN + header.body_len);
            self.pending = None;
            self.frame_start = if self.buf.is_empty() {
                None
            } else {
                Some(Instant::now())
            };
            if malformed {
                return false;
            }
        }
    }

    /// Queues encoded frame bytes for writing (call [`Conn::flush`] after).
    pub fn queue(&mut self, bytes: &[u8]) {
        // Compact lazily: drop the already-written prefix when it dominates.
        if self.out_pos > 0 && self.out_pos * 2 >= self.out.len() {
            self.out.drain(..self.out_pos);
            self.out_pos = 0;
        }
        self.out.extend_from_slice(bytes);
    }

    /// Writes pending output until done or the kernel would block.
    /// Returns `Ok(true)` when the buffer fully drained.
    pub fn flush(&mut self) -> std::io::Result<bool> {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted no bytes",
                    ))
                }
                Ok(n) => {
                    self.out_pos += n;
                    self.last_activity = Instant::now();
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Ok(false),
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        self.out.clear();
        self.out_pos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_pipeline::planner::PayloadLayout;
    use errflow_tensor::norms::Norm;
    use std::net::TcpListener;

    fn pair() -> (TcpStream, Conn) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let tx = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        let (rx, _) = listener.accept().unwrap();
        (tx, Conn::new(rx).unwrap())
    }

    fn sample_frame() -> Vec<u8> {
        proto::encode_request(&RequestFrame {
            model_id: 0,
            rel_tolerance: 1e-2,
            norm: Norm::L2,
            layout: PayloadLayout::FeatureMajor,
            samples: vec![vec![0.5f32; 4]; 2],
        })
        .unwrap()
    }

    #[test]
    fn reassembles_frame_split_across_reads() {
        let (mut tx, mut conn) = pair();
        let frame = sample_frame();
        // Drip the frame in three fragments, poking the state machine
        // between them: no event until the final byte arrives.
        let cuts = [5, HEADER_LEN + 3, frame.len()];
        let mut sent = 0usize;
        for (i, &cut) in cuts.iter().enumerate() {
            tx.write_all(&frame[sent..cut]).unwrap();
            tx.flush().unwrap();
            sent = cut;
            // Give loopback a moment to deliver.
            std::thread::sleep(Duration::from_millis(10));
            let events = conn.on_readable();
            if i + 1 < cuts.len() {
                assert!(events.is_empty(), "partial frame produced {events:?}");
            } else {
                assert_eq!(events.len(), 1);
                assert!(matches!(events[0], ConnEvent::Request { .. }));
            }
        }
    }

    #[test]
    fn two_frames_in_one_read() {
        let (mut tx, mut conn) = pair();
        let frame = sample_frame();
        let mut both = frame.clone();
        both.extend_from_slice(&frame);
        tx.write_all(&both).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let events = conn.on_readable();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(events
            .iter()
            .all(|e| matches!(e, ConnEvent::Request { .. })));
    }

    #[test]
    fn metrics_and_health_frames_parse_as_events() {
        let (mut tx, mut conn) = pair();
        let mut bytes = proto::encode_metrics_request(&proto::MetricsRequestFrame {
            format: proto::MetricsFormat::Binary,
            tier: proto::TIER_ALL,
            window: 60,
        })
        .unwrap();
        bytes.extend_from_slice(&proto::encode_health_request());
        tx.write_all(&bytes).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let events = conn.on_readable();
        assert_eq!(events.len(), 2, "{events:?}");
        assert!(matches!(
            events[0],
            ConnEvent::Metrics(proto::MetricsRequestFrame { window: 60, .. })
        ));
        assert!(matches!(events[1], ConnEvent::Health));
    }

    #[test]
    fn forged_tier_selector_is_malformed_event() {
        let (mut tx, mut conn) = pair();
        let mut frame = proto::encode_metrics_request(&proto::MetricsRequestFrame {
            format: proto::MetricsFormat::Prometheus,
            tier: 0,
            window: 0,
        })
        .unwrap();
        frame[HEADER_LEN + 1] = 42; // tier byte
        tx.write_all(&frame).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let events = conn.on_readable();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], ConnEvent::Malformed(_)), "{events:?}");
    }

    #[test]
    fn garbage_bytes_produce_malformed_not_panic() {
        let (mut tx, mut conn) = pair();
        tx.write_all(&[0xFFu8; 64]).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let events = conn.on_readable();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], ConnEvent::Malformed(_)));
    }

    #[test]
    fn mid_frame_disconnect_reports_closed() {
        let (mut tx, mut conn) = pair();
        let frame = sample_frame();
        tx.write_all(&frame[..HEADER_LEN + 2]).unwrap();
        tx.flush().unwrap();
        drop(tx); // disconnect mid-body
        std::thread::sleep(Duration::from_millis(10));
        let events = conn.on_readable();
        assert!(
            events.iter().any(|e| matches!(e, ConnEvent::Closed)),
            "{events:?}"
        );
        assert!(!events
            .iter()
            .any(|e| matches!(e, ConnEvent::Request { .. })));
    }

    #[test]
    fn partial_write_flushes_incrementally() {
        let (tx, mut conn) = pair();
        // Saturate: queue chunks (the peer not reading) until the kernel
        // buffers fill and flush leaves bytes pending.  Buffer sizes are
        // auto-tuned, so grow until we actually hit a partial write.
        let chunk_bytes = vec![0xABu8; 1024 * 1024];
        let mut queued = 0usize;
        for _ in 0..512 {
            conn.queue(&chunk_bytes);
            queued += chunk_bytes.len();
            if !conn.flush().unwrap() {
                break;
            }
        }
        assert!(conn.wants_write(), "512 MiB must not fit in kernel buffers");
        // Now let the peer read everything; flush must finish.
        let mut rx = tx;
        rx.set_nonblocking(true).unwrap();
        let mut got = 0usize;
        let mut chunk = vec![0u8; 65536];
        while got < queued {
            match rx.read(&mut chunk) {
                Ok(0) => break,
                Ok(n) => got += n,
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    if conn.flush().unwrap() && got >= queued {
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                Err(e) => panic!("read: {e}"),
            }
        }
        assert_eq!(got, queued);
        assert!(!conn.wants_write());
    }
}
