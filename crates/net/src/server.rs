//! The network frontend: nonblocking acceptor/reader io threads driving
//! [`Conn`] state machines and dispatching decoded requests into an
//! [`errflow_serve::Server`] through its sharded admission queue.
//!
//! Threading: `io_threads` dedicated threads (from
//! [`errflow_tensor::pool::ThreadPool::spawn_dedicated`], so they are
//! accounted outside the compute-worker set).  Thread 0 owns the listener
//! and routes accepted connections round-robin across all io threads; each
//! thread runs a readiness poll loop ([`crate::poll`]) over its own
//! connections plus a wake socket.  Serve workers never touch sockets:
//! completions are handed back through a per-thread completion queue (the
//! submit hook pushes and wakes), and the io thread encodes + writes.
//!
//! Admission semantics over the wire: [`ServeError::QueueFull`] becomes a
//! **retryable** error frame and the connection stays open — backpressure
//! is never a dropped connection.  Malformed frames get a typed error
//! frame and then the connection closes (framing is unsynchronized).

use crate::conn::{Conn, ConnEvent};
use crate::poll::{poll_fds, PollFd};
use crate::proto::{self, ErrorFrame, ResponseFrame};
use errflow_nn::Model;
use errflow_obs::Counter;
use errflow_serve::server::{Request, Response, ServeError, Server};
use errflow_tensor::sync::lock_recover;
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Network frontend construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NetConfig {
    /// Dedicated io (acceptor/reader) threads.
    pub io_threads: usize,
    /// Maximum concurrent connections across all io threads; excess
    /// accepts are closed immediately.
    pub max_connections: usize,
    /// Connections idle longer than this (no traffic, nothing in flight)
    /// are closed.
    pub idle_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            io_threads: 1,
            max_connections: 256,
            idle_timeout: Duration::from_secs(30),
        }
    }
}

/// Poll timeout: bounds idle-sweep latency and shutdown response time.
const POLL_TICK: Duration = Duration::from_millis(100);

#[cfg(unix)]
fn fd_of<T: std::os::unix::io::AsRawFd>(t: &T) -> i32 {
    t.as_raw_fd()
}

#[cfg(not(unix))]
fn fd_of<T>(_t: &T) -> i32 {
    0
}

/// A completed job on its way back to a connection.
struct Completion {
    slot: usize,
    gen: u64,
    result: Result<Response, ServeError>,
    /// When the worker fulfilled the job (egress measurement starts here).
    fulfilled: Instant,
}

/// One io thread's mailbox: freshly accepted connections and completed
/// jobs land here; a byte on the wake socket interrupts its poll.
struct IoShared {
    inbox: Mutex<Vec<TcpStream>>,
    completions: Mutex<Vec<Completion>>,
    wake_tx: TcpStream,
}

impl IoShared {
    fn wake(&self) {
        // A failed wake is harmless: the loop re-checks mailboxes on its
        // poll tick anyway.
        let _ = (&self.wake_tx).write(&[1u8]);
    }
}

/// Loopback socket pair for waking a poll loop (`tx` write → `rx` ready).
/// Built from a throwaway listener so it stays std-only and portable.
fn wake_pair() -> std::io::Result<(TcpStream, TcpStream)> {
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let tx = TcpStream::connect(listener.local_addr()?)?;
    let (rx, _) = listener.accept()?;
    rx.set_nonblocking(true)?;
    // Nonblocking on the write side too: a serve worker must never stall
    // on a full loopback buffer (a failed wake is harmless, see wake()).
    tx.set_nonblocking(true)?;
    tx.set_nodelay(true)?;
    Ok((tx, rx))
}

/// Process-total net frontend metrics (registered in [`errflow_obs`]).
struct NetMetrics {
    accepted: Counter,
    closed: Counter,
    conn_rejected: Counter,
    requests: Counter,
    responses: Counter,
    backpressure: Counter,
    errors: Counter,
    malformed: Counter,
    scrapes: Counter,
    health: Counter,
}

impl NetMetrics {
    fn new() -> Self {
        NetMetrics {
            accepted: errflow_obs::counter("net.conns_accepted"),
            closed: errflow_obs::counter("net.conns_closed"),
            conn_rejected: errflow_obs::counter("net.conns_rejected"),
            requests: errflow_obs::counter("net.frames_request"),
            responses: errflow_obs::counter("net.frames_response"),
            backpressure: errflow_obs::counter("net.frames_backpressure"),
            errors: errflow_obs::counter("net.frames_error"),
            malformed: errflow_obs::counter("net.frames_malformed"),
            scrapes: errflow_obs::counter("net.frames_metrics"),
            health: errflow_obs::counter("net.frames_health"),
        }
    }
}

/// A running network frontend over one [`Server`].  Dropping it shuts the
/// io threads down (the inner `Server` is owned by the caller and keeps
/// running).
pub struct NetServer {
    local_addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    shards: Vec<Arc<IoShared>>,
    threads: Vec<std::thread::JoinHandle<()>>,
}

impl NetServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts the io threads serving `server`.
    pub fn start<M: Model + Clone + Send + Sync + 'static>(
        server: Arc<Server<M>>,
        addr: &str,
        cfg: NetConfig,
    ) -> std::io::Result<NetServer> {
        let io_threads = cfg.io_threads.max(1);
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let conn_count = Arc::new(AtomicUsize::new(0));

        let mut shards = Vec::with_capacity(io_threads);
        let mut wake_rxs = Vec::with_capacity(io_threads);
        for _ in 0..io_threads {
            let (tx, rx) = wake_pair()?;
            shards.push(Arc::new(IoShared {
                inbox: Mutex::new(Vec::new()),
                completions: Mutex::new(Vec::new()),
                wake_tx: tx,
            }));
            wake_rxs.push(rx);
        }

        let threads = wake_rxs
            .into_iter()
            .enumerate()
            .map(|(i, wake_rx)| {
                let server = Arc::clone(&server);
                let shutdown = Arc::clone(&shutdown);
                let conn_count = Arc::clone(&conn_count);
                let shards: Vec<Arc<IoShared>> = shards.clone();
                let listener = if i == 0 {
                    Some(listener.try_clone()?)
                } else {
                    None
                };
                Ok(errflow_tensor::pool::global().spawn_dedicated(
                    format!("errflow-net-io-{i}"),
                    move || {
                        io_loop(IoLoop {
                            idx: i,
                            server,
                            listener,
                            wake_rx,
                            shards,
                            shutdown,
                            conn_count,
                            cfg,
                        })
                    },
                ))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        Ok(NetServer {
            local_addr,
            shutdown,
            shards,
            threads,
        })
    }

    /// The bound address (with the resolved port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Stops the io threads: open connections are closed, in-flight
    /// completions are dropped.  Idempotent; also runs on drop.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Release);
        for s in &self.shards {
            s.wake();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Everything one io thread owns.
struct IoLoop<M: Model + Clone + Send + Sync + 'static> {
    idx: usize,
    server: Arc<Server<M>>,
    listener: Option<TcpListener>,
    wake_rx: TcpStream,
    shards: Vec<Arc<IoShared>>,
    shutdown: Arc<AtomicBool>,
    conn_count: Arc<AtomicUsize>,
    cfg: NetConfig,
}

fn io_loop<M: Model + Clone + Send + Sync + 'static>(io: IoLoop<M>) {
    let metrics = NetMetrics::new();
    let shared = Arc::clone(&io.shards[io.idx]);
    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut gens: Vec<u64> = Vec::new();
    let mut next_route = 0usize;
    let mut fds: Vec<PollFd> = Vec::new();
    // fds slot → conns slot, offset by the fixed wake/listener entries.
    let mut fd_slots: Vec<usize> = Vec::new();

    while !io.shutdown.load(Ordering::Acquire) {
        fds.clear();
        fd_slots.clear();
        fds.push(PollFd::new(fd_of(&io.wake_rx), false));
        if let Some(l) = &io.listener {
            fds.push(PollFd::new(fd_of(l), false));
        }
        let fixed = fds.len();
        for (slot, c) in conns.iter().enumerate() {
            if let Some(conn) = c {
                if !conn.dead {
                    fds.push(PollFd::new(conn.fd(), conn.wants_write()));
                    fd_slots.push(slot);
                }
            }
        }
        if poll_fds(&mut fds, POLL_TICK).is_err() {
            // A failing poller leaves only degraded operation: behave like
            // a timeout tick and keep serving via the mailbox paths.
            std::thread::sleep(Duration::from_millis(1));
        }
        if io.shutdown.load(Ordering::Acquire) {
            break;
        }

        // Drain the wake socket (bytes are just doorbells).
        let mut sink = [0u8; 64];
        loop {
            match (&io.wake_rx).read(&mut sink) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break, // WouldBlock or a broken waker: move on
            }
        }

        // Adopt connections routed to this thread.
        for stream in std::mem::take(&mut *lock_recover(&shared.inbox)) {
            match Conn::new(stream) {
                Ok(conn) => {
                    alloc_slot(&mut conns, &mut gens, conn);
                }
                Err(_) => {
                    io.conn_count.fetch_sub(1, Ordering::AcqRel);
                    metrics.closed.inc();
                }
            }
        }

        // Deliver completed jobs to their connections.
        for c in std::mem::take(&mut *lock_recover(&shared.completions)) {
            deliver_completion(&io, &metrics, &mut conns, &mut gens, c);
        }

        // Accept new connections (thread 0 only).
        if let Some(listener) = &io.listener {
            accept_loop(
                listener,
                &io,
                &metrics,
                &mut conns,
                &mut gens,
                &mut next_route,
            );
        }

        // Readiness-driven connection events.
        for (i, pfd) in fds.iter().enumerate().skip(fixed) {
            let slot = fd_slots[i - fixed];
            if pfd.readable() {
                handle_readable(&io, &metrics, &shared, &mut conns, &gens, slot);
            }
            if pfd.writable() {
                if let Some(conn) = conns[slot].as_mut() {
                    if conn.flush().is_err() {
                        conn.dead = true;
                    }
                }
            }
            reap(&io, &metrics, &mut conns, &mut gens, slot);
        }

        // Idle + dead-slot sweep.  Dead conns are excluded from the poll
        // set, so they get no readiness event to ride a reap on — sweep
        // them every tick (the completion path also reaps eagerly).
        let now = Instant::now();
        for slot in 0..conns.len() {
            let expire = conns[slot].as_ref().is_some_and(|c| {
                !c.dead
                    && c.inflight == 0
                    && !c.wants_write()
                    && c.idle_for(now) > io.cfg.idle_timeout
            });
            if expire {
                if let Some(c) = conns[slot].as_mut() {
                    c.dead = true;
                }
            }
            reap(&io, &metrics, &mut conns, &mut gens, slot);
        }
    }

    // Shutdown: drop every connection (sockets close on drop).
    for slot in 0..conns.len() {
        if conns[slot].take().is_some() {
            io.conn_count.fetch_sub(1, Ordering::AcqRel);
            metrics.closed.inc();
        }
    }
}

fn alloc_slot(conns: &mut Vec<Option<Conn>>, gens: &mut Vec<u64>, conn: Conn) -> usize {
    for (i, c) in conns.iter_mut().enumerate() {
        if c.is_none() {
            *c = Some(conn);
            return i;
        }
    }
    conns.push(Some(conn));
    gens.push(0);
    conns.len() - 1
}

/// Frees a slot whose connection is dead and fully drained.
fn reap<M: Model + Clone + Send + Sync + 'static>(
    io: &IoLoop<M>,
    metrics: &NetMetrics,
    conns: &mut [Option<Conn>],
    gens: &mut [u64],
    slot: usize,
) {
    let free = match &conns[slot] {
        Some(c) => {
            (c.dead && c.inflight == 0)
                || (c.close_after_flush && !c.wants_write() && c.inflight == 0)
        }
        None => false,
    };
    if free {
        conns[slot] = None;
        gens[slot] = gens[slot].wrapping_add(1);
        io.conn_count.fetch_sub(1, Ordering::AcqRel);
        metrics.closed.inc();
    }
}

fn accept_loop<M: Model + Clone + Send + Sync + 'static>(
    listener: &TcpListener,
    io: &IoLoop<M>,
    metrics: &NetMetrics,
    conns: &mut Vec<Option<Conn>>,
    gens: &mut Vec<u64>,
    next_route: &mut usize,
) {
    loop {
        match listener.accept() {
            Ok((stream, _peer)) => {
                if io.conn_count.load(Ordering::Acquire) >= io.cfg.max_connections {
                    metrics.conn_rejected.inc();
                    drop(stream); // connection limit: refuse by closing
                    continue;
                }
                io.conn_count.fetch_add(1, Ordering::AcqRel);
                metrics.accepted.inc();
                let target = *next_route % io.shards.len();
                *next_route = next_route.wrapping_add(1);
                if target == io.idx {
                    match Conn::new(stream) {
                        Ok(conn) => {
                            alloc_slot(conns, gens, conn);
                        }
                        Err(_) => {
                            io.conn_count.fetch_sub(1, Ordering::AcqRel);
                            metrics.closed.inc();
                        }
                    }
                } else {
                    lock_recover(&io.shards[target].inbox).push(stream);
                    io.shards[target].wake();
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
}

fn handle_readable<M: Model + Clone + Send + Sync + 'static>(
    io: &IoLoop<M>,
    metrics: &NetMetrics,
    shared: &Arc<IoShared>,
    conns: &mut [Option<Conn>],
    gens: &[u64],
    slot: usize,
) {
    let events = match conns[slot].as_mut() {
        Some(conn) => conn.on_readable(),
        None => return,
    };
    for event in events {
        match event {
            ConnEvent::Request { frame, ingress } => {
                metrics.requests.inc();
                let server_model = io.server.model_id();
                if frame.model_id != 0 && frame.model_id != server_model {
                    let ef = ErrorFrame::from_serve(&ServeError::Invalid(format!(
                        "model id {:#x} not served (serving {:#x})",
                        frame.model_id, server_model
                    )));
                    metrics.errors.inc();
                    if let Some(conn) = conns[slot].as_mut() {
                        conn.queue(&proto::encode_error(&ef));
                    }
                    continue;
                }
                let req = Request {
                    samples: frame.samples,
                    rel_tolerance: frame.rel_tolerance,
                    norm: frame.norm,
                    layout: frame.layout,
                };
                let shared = Arc::clone(shared);
                let gen = gens[slot];
                let submitted =
                    io.server
                        .try_submit_with(req, ingress.as_nanos() as u64, move |result| {
                            lock_recover(&shared.completions).push(Completion {
                                slot,
                                gen,
                                result,
                                fulfilled: Instant::now(),
                            });
                            shared.wake();
                        });
                match submitted {
                    Ok(()) => {
                        if let Some(conn) = conns[slot].as_mut() {
                            conn.inflight += 1;
                        }
                    }
                    Err(e) => {
                        // QueueFull → retryable backpressure frame; the
                        // connection stays open in every error case here.
                        if matches!(e, ServeError::QueueFull) {
                            metrics.backpressure.inc();
                        } else {
                            metrics.errors.inc();
                        }
                        if let Some(conn) = conns[slot].as_mut() {
                            conn.queue(&proto::encode_error(&ErrorFrame::from_serve(&e)));
                        }
                    }
                }
            }
            // Telemetry frames are answered right here on the io thread
            // from the process-wide observability globals: a scrape never
            // enters the serve queue, so it cannot block (or be blocked
            // by) a compute worker.
            ConnEvent::Metrics(req) => {
                metrics.scrapes.inc();
                let bytes = build_metrics_response(&req);
                if let Some(conn) = conns[slot].as_mut() {
                    conn.queue(&bytes);
                }
            }
            ConnEvent::Health => {
                metrics.health.inc();
                let statuses = errflow_obs::slo::global_statuses();
                let bytes = match proto::encode_health_response(&statuses) {
                    Ok(b) => b,
                    Err(e) => {
                        metrics.errors.inc();
                        proto::encode_error(&ErrorFrame::malformed(&e))
                    }
                };
                if let Some(conn) = conns[slot].as_mut() {
                    conn.queue(&bytes);
                }
            }
            ConnEvent::Malformed(e) => {
                metrics.malformed.inc();
                if let Some(conn) = conns[slot].as_mut() {
                    conn.queue(&proto::encode_error(&ErrorFrame::malformed(&e)));
                    conn.close_after_flush = true;
                }
            }
            ConnEvent::Closed => {
                if let Some(conn) = conns[slot].as_mut() {
                    conn.dead = true;
                }
            }
        }
    }
    if let Some(conn) = conns[slot].as_mut() {
        if conn.flush().is_err() {
            conn.dead = true;
        }
    }
}

/// Builds the encoded reply to a metrics scrape from the observability
/// globals.  Runs on the io thread; the only locks taken are the obs
/// registry/sampler/SLO mutexes, each briefly and one at a time.
fn build_metrics_response(req: &proto::MetricsRequestFrame) -> Vec<u8> {
    use proto::{MetricsFormat, MetricsResponseFrame, ScrapePayload};
    let tier_sel = if req.tier == proto::TIER_ALL {
        None
    } else {
        Some(req.tier as usize)
    };
    let window = req.window as usize;
    let resp = match req.format {
        MetricsFormat::Prometheus => MetricsResponseFrame::Text {
            format: MetricsFormat::Prometheus,
            body: errflow_obs::export_prometheus(),
        },
        MetricsFormat::Json => {
            let sampler = errflow_obs::timeseries::global();
            let series = lock_recover(sampler).export_json(tier_sel, window);
            let engine = errflow_obs::slo::global();
            let slo = lock_recover(engine).export_json();
            MetricsResponseFrame::Text {
                format: MetricsFormat::Json,
                body: format!("{{\"series\":{series},\"slo\":{slo}}}"),
            }
        }
        MetricsFormat::Binary => {
            let sampler = errflow_obs::timeseries::global();
            let dump = lock_recover(sampler).dump(tier_sel, window);
            let hists = errflow_obs::snapshot_all()
                .into_iter()
                .filter_map(|(name, snap)| match snap {
                    errflow_obs::MetricSnapshot::Histogram(h) => Some(proto::HistogramDump {
                        name,
                        count: h.count,
                        sum: h.sum,
                        buckets: h
                            .buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &c)| c > 0)
                            .map(|(i, &c)| (i as u8, c))
                            .collect(),
                    }),
                    _ => None,
                })
                .collect();
            MetricsResponseFrame::Binary(ScrapePayload { dump, hists })
        }
    };
    match proto::encode_metrics_response(&resp) {
        Ok(b) => b,
        Err(e) => proto::encode_error(&ErrorFrame::malformed(&e)),
    }
}

fn deliver_completion<M: Model + Clone + Send + Sync + 'static>(
    io: &IoLoop<M>,
    metrics: &NetMetrics,
    conns: &mut [Option<Conn>],
    gens: &mut [u64],
    c: Completion,
) {
    let Completion {
        slot,
        gen,
        result,
        fulfilled,
    } = c;
    if slot >= conns.len() || gens[slot] != gen {
        return; // connection was reaped and the slot reused
    }
    let Some(conn) = conns[slot].as_mut() else {
        return;
    };
    conn.inflight = conn.inflight.saturating_sub(1);
    // A dead peer gets nothing; a connection closing after a malformed
    // frame gets nothing *after* the error frame (the protocol closes
    // there — no trailing responses for earlier in-flight requests).
    if !conn.dead && !conn.close_after_flush {
        let bytes = match result {
            Ok(resp) => {
                metrics.responses.inc();
                let mut stages = resp.stages;
                // Egress on the wire covers hand-off + encode; the full
                // interval including the socket write lands in the server
                // histogram below.
                stages.egress_ns = fulfilled.elapsed().as_nanos() as u64;
                match proto::encode_response(&ResponseFrame {
                    outputs: resp.outputs,
                    rel_bound: resp.rel_bound,
                    plan_tolerance: resp.plan_tolerance,
                    format: resp.format,
                    cache_hit: resp.cache_hit,
                    batch_size: resp.batch_size as u32,
                    latency_ns: resp.latency.as_nanos() as u64,
                    stages,
                }) {
                    Ok(b) => b,
                    Err(e) => {
                        metrics.errors.inc();
                        proto::encode_error(&ErrorFrame::malformed(&e))
                    }
                }
            }
            Err(e) => {
                metrics.errors.inc();
                proto::encode_error(&ErrorFrame::from_serve(&e))
            }
        };
        conn.queue(&bytes);
        if conn.flush().is_err() {
            conn.dead = true;
        }
        io.server
            .note_egress_ns(fulfilled.elapsed().as_nanos() as u64);
    }
    // This decrement may be the last thing the slot was waiting on (the
    // peer vanished with requests in flight) — free it here, not on a
    // readiness event a dead conn will never get.
    reap(io, metrics, conns, gens, slot);
}
