//! The errflow wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is a fixed 16-byte header followed by a body:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  b"EFNP"
//!  4       1     protocol version (1)
//!  5       1     frame type: 1 = Request, 2 = Response, 3 = Error,
//!                4 = MetricsRequest, 5 = MetricsResponse,
//!                6 = HealthRequest, 7 = HealthResponse
//!  6       2     reserved (must be 0)
//!  8       8     body length, u64 LE (≤ MAX_BODY)
//! ```
//!
//! All multi-byte fields are little-endian.  Header and body fields are
//! parsed with the checked readers from [`errflow_compress::traits`] —
//! the same helpers the codec decoders use for untrusted streams — so a
//! truncated or forged field yields a typed [`ProtoError`], never a panic
//! or an unchecked allocation.
//!
//! One request frame maps to one response **or** one error frame, in
//! order; the protocol has no request ids (a connection is a closed loop —
//! clients wanting pipelining open several connections).  Error frames
//! carry a `retryable` flag: backpressure ([`ErrorCode::QueueFull`]) is
//! retryable and the connection stays open; malformed framing is not (the
//! byte stream is unsynchronized after it, so the server closes after the
//! error frame is flushed).
//!
//! The **telemetry frames** (types 4–7) follow the same one-in/one-out
//! discipline but are answered entirely on the io thread from the
//! process-wide observability globals — a scrape never enters the serve
//! queue, so it can never block (or be blocked by) a worker.
//! `MetricsRequest` selects an exposition format (Prometheus text, JSON,
//! or the typed binary dump `errflow-cli top` decodes — the workspace
//! carries no JSON parser), a retention tier, and a per-series point
//! window; `HealthRequest` has an empty body and is answered with the
//! hysteresis-filtered SLO states.

use errflow_compress::traits::{read_f32, read_f64, read_len_u32, read_len_u64, read_u64, read_u8};
use errflow_compress::CompressError;
use errflow_obs::slo::{SloState, SloStatus};
use errflow_obs::timeseries::{Point, SeriesDump, TierDump, TieredDump};
use errflow_pipeline::planner::PayloadLayout;
use errflow_quant::QuantFormat;
use errflow_serve::{RequestStages, ServeError};
use errflow_tensor::norms::Norm;

/// Frame magic: "errflow net protocol".
pub const MAGIC: [u8; 4] = *b"EFNP";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on a frame body: a forged length field beyond this is
/// rejected before any allocation (64 MiB ≈ 16 Mi f32 samples).
pub const MAX_BODY: usize = 1 << 26;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server inference request.
    Request,
    /// Server → client fulfilled response.
    Response,
    /// Server → client typed error.
    Error,
    /// Client → server metrics scrape (format + tier + window selectors).
    MetricsRequest,
    /// Server → client metrics exposition body.
    MetricsResponse,
    /// Client → server SLO health probe (empty body).
    HealthRequest,
    /// Server → client SLO states.
    HealthResponse,
}

impl FrameType {
    /// Wire code of this frame type.
    pub fn code(self) -> u8 {
        match self {
            FrameType::Request => 1,
            FrameType::Response => 2,
            FrameType::Error => 3,
            FrameType::MetricsRequest => 4,
            FrameType::MetricsResponse => 5,
            FrameType::HealthRequest => 6,
            FrameType::HealthResponse => 7,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            1 => Ok(FrameType::Request),
            2 => Ok(FrameType::Response),
            3 => Ok(FrameType::Error),
            4 => Ok(FrameType::MetricsRequest),
            5 => Ok(FrameType::MetricsResponse),
            6 => Ok(FrameType::HealthRequest),
            7 => Ok(FrameType::HealthResponse),
            other => Err(ProtoError::BadFrameType(other)),
        }
    }
}

/// Typed protocol failures.  Every malformed input maps to one of these —
/// decoding never panics and never allocates from an unchecked length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type code.
    BadFrameType(u8),
    /// Header-declared body length exceeds [`MAX_BODY`].
    BodyTooLarge(u64),
    /// Truncated or internally inconsistent frame content.
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::BodyTooLarge(n) => {
                write!(f, "declared body length {n} exceeds cap {MAX_BODY}")
            }
            ProtoError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CompressError> for ProtoError {
    fn from(e: CompressError) -> Self {
        ProtoError::Corrupt(e.to_string())
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the body decodes as.
    pub frame_type: FrameType,
    /// Exact body length that follows the header.
    pub body_len: usize,
}

/// Parses and validates a frame header from the first [`HEADER_LEN`] bytes
/// of `buf`.  Magic and version are checked before the length field is
/// trusted, so a garbage stream fails fast.
pub fn parse_header(buf: &[u8]) -> Result<FrameHeader, ProtoError> {
    let mut pos = 0usize;
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = read_u8(buf, &mut pos, "frame magic")?;
    }
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = read_u8(buf, &mut pos, "protocol version")?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let type_code = read_u8(buf, &mut pos, "frame type")?;
    let frame_type = FrameType::from_code(type_code)?;
    let reserved = (read_u8(buf, &mut pos, "reserved")? as u16)
        | ((read_u8(buf, &mut pos, "reserved")? as u16) << 8);
    if reserved != 0 {
        return Err(ProtoError::Corrupt("nonzero reserved header bytes".into()));
    }
    let body_len = read_len_u64(buf, &mut pos, "frame body length")?;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    Ok(FrameHeader {
        frame_type,
        body_len,
    })
}

fn put_header(out: &mut Vec<u8>, frame_type: FrameType, body_len: usize) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame_type.code());
    out.extend_from_slice(&[0u8, 0u8]);
    out.extend_from_slice(&(body_len as u64).to_le_bytes());
}

/// Norm wire codes (shared with the serve plan key encoding).
fn norm_code(norm: Norm) -> u8 {
    match norm {
        Norm::L2 => 0,
        Norm::LInf => 1,
    }
}

fn norm_from_code(code: u8) -> Result<Norm, ProtoError> {
    match code {
        0 => Ok(Norm::L2),
        1 => Ok(Norm::LInf),
        other => Err(ProtoError::Corrupt(format!("unknown norm code {other}"))),
    }
}

fn layout_code(layout: PayloadLayout) -> u8 {
    match layout {
        PayloadLayout::FeatureMajor => 0,
        PayloadLayout::SampleMajor => 1,
    }
}

fn layout_from_code(code: u8) -> Result<PayloadLayout, ProtoError> {
    match code {
        0 => Ok(PayloadLayout::FeatureMajor),
        1 => Ok(PayloadLayout::SampleMajor),
        other => Err(ProtoError::Corrupt(format!("unknown layout code {other}"))),
    }
}

/// Wire code of a quantization format (index into [`QuantFormat::ALL`]).
pub fn format_code(f: QuantFormat) -> u8 {
    match f {
        QuantFormat::Fp32 => 0,
        QuantFormat::Tf32 => 1,
        QuantFormat::Fp16 => 2,
        QuantFormat::Bf16 => 3,
        QuantFormat::Int8 => 4,
    }
}

/// Inverse of [`format_code`].
pub fn format_from_code(code: u8) -> Result<QuantFormat, ProtoError> {
    QuantFormat::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| ProtoError::Corrupt(format!("unknown format code {code}")))
}

/// A decoded inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Served-model identifier the client expects (`0` = any model).
    pub model_id: u64,
    /// Relative QoI tolerance.
    pub rel_tolerance: f64,
    /// Norm the tolerance is expressed in.
    pub norm: Norm,
    /// Payload flattening layout.
    pub layout: PayloadLayout,
    /// Input samples (rectangular: every row has the same length).
    pub samples: Vec<Vec<f32>>,
}

/// Encodes a request as a complete frame (header + body).  Fails on a
/// ragged payload — the wire format carries one `(n, dim)` pair.
pub fn encode_request(req: &RequestFrame) -> Result<Vec<u8>, ProtoError> {
    let n = req.samples.len();
    let dim = req.samples.first().map_or(0, Vec::len);
    if req.samples.iter().any(|s| s.len() != dim) {
        return Err(ProtoError::Corrupt("ragged request payload".into()));
    }
    let body_len = 8 + 8 + 1 + 1 + 4 + 4 + n * dim * 4;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Request, body_len);
    out.extend_from_slice(&req.model_id.to_le_bytes());
    out.extend_from_slice(&req.rel_tolerance.to_le_bytes());
    out.push(norm_code(req.norm));
    out.push(layout_code(req.layout));
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for s in &req.samples {
        for v in s {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a request body (the bytes after the header).  The declared
/// `(n_samples, dim)` pair must account for exactly the remaining bytes,
/// so a forged count can neither over-allocate nor leave trailing bytes.
pub fn decode_request(body: &[u8]) -> Result<RequestFrame, ProtoError> {
    let mut pos = 0usize;
    let model_id = read_u64(body, &mut pos, "model id")?;
    let rel_tolerance = read_f64(body, &mut pos, "tolerance")?;
    let norm = norm_from_code(read_u8(body, &mut pos, "norm")?)?;
    let layout = layout_from_code(read_u8(body, &mut pos, "layout")?)?;
    let n = read_len_u32(body, &mut pos, "sample count")?;
    let dim = read_len_u32(body, &mut pos, "sample dim")?;
    let payload_bytes = n
        .checked_mul(dim)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| ProtoError::Corrupt("sample count × dim overflows".into()))?;
    let remaining = body.len() - pos;
    if payload_bytes != remaining {
        return Err(ProtoError::Corrupt(format!(
            "payload declares {payload_bytes} bytes but frame carries {remaining}"
        )));
    }
    let mut samples = Vec::with_capacity(n.min(MAX_BODY / 4));
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(read_f32(body, &mut pos, "sample value")?);
        }
        samples.push(row);
    }
    Ok(RequestFrame {
        model_id,
        rel_tolerance,
        norm,
        layout,
        samples,
    })
}

/// A decoded inference response: outputs plus the certificate and the
/// per-stage timing breakdown (including the net-frontend `ingress` and
/// `egress` stages).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// One prediction per request sample, in order.
    pub outputs: Vec<Vec<f32>>,
    /// Certified relative QoI error bound.
    pub rel_bound: f64,
    /// Tolerance the plan was computed at (the bucket floor).
    pub plan_tolerance: f64,
    /// Weight format the plan selected.
    pub format: QuantFormat,
    /// `true` when the plan came from the cache.
    pub cache_hit: bool,
    /// Jobs that shared this batched forward pass.
    pub batch_size: u32,
    /// Server-side end-to-end latency in nanoseconds (admission →
    /// fulfill; excludes ingress/egress, which are reported as stages).
    pub latency_ns: u64,
    /// Per-stage timing breakdown.
    pub stages: RequestStages,
}

/// Encodes a response as a complete frame.  Fails on ragged outputs.
pub fn encode_response(resp: &ResponseFrame) -> Result<Vec<u8>, ProtoError> {
    let n = resp.outputs.len();
    let dim = resp.outputs.first().map_or(0, Vec::len);
    if resp.outputs.iter().any(|o| o.len() != dim) {
        return Err(ProtoError::Corrupt("ragged response outputs".into()));
    }
    let body_len = 8 + 8 + 1 + 1 + 4 + 8 + 7 * 8 + 4 + 4 + n * dim * 4;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Response, body_len);
    out.extend_from_slice(&resp.rel_bound.to_le_bytes());
    out.extend_from_slice(&resp.plan_tolerance.to_le_bytes());
    out.push(format_code(resp.format));
    out.push(resp.cache_hit as u8);
    out.extend_from_slice(&resp.batch_size.to_le_bytes());
    out.extend_from_slice(&resp.latency_ns.to_le_bytes());
    let s = &resp.stages;
    for ns in [
        s.ingress_ns,
        s.batch_wait_ns,
        s.plan_ns,
        s.decompress_ns,
        s.forward_ns,
        s.respond_ns,
        s.egress_ns,
    ] {
        out.extend_from_slice(&ns.to_le_bytes());
    }
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for o in &resp.outputs {
        for v in o {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a response body.
pub fn decode_response(body: &[u8]) -> Result<ResponseFrame, ProtoError> {
    let mut pos = 0usize;
    let rel_bound = read_f64(body, &mut pos, "rel bound")?;
    let plan_tolerance = read_f64(body, &mut pos, "plan tolerance")?;
    let format = format_from_code(read_u8(body, &mut pos, "format")?)?;
    let cache_hit = read_u8(body, &mut pos, "cache hit")? != 0;
    let batch_size = read_len_u32(body, &mut pos, "batch size")? as u32;
    let latency_ns = read_u64(body, &mut pos, "latency")?;
    let mut stage_ns = [0u64; 7];
    for ns in &mut stage_ns {
        *ns = read_u64(body, &mut pos, "stage ns")?;
    }
    let n = read_len_u32(body, &mut pos, "output count")?;
    let dim = read_len_u32(body, &mut pos, "output dim")?;
    let payload_bytes = n
        .checked_mul(dim)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| ProtoError::Corrupt("output count × dim overflows".into()))?;
    let remaining = body.len() - pos;
    if payload_bytes != remaining {
        return Err(ProtoError::Corrupt(format!(
            "outputs declare {payload_bytes} bytes but frame carries {remaining}"
        )));
    }
    let mut outputs = Vec::with_capacity(n.min(MAX_BODY / 4));
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(read_f32(body, &mut pos, "output value")?);
        }
        outputs.push(row);
    }
    Ok(ResponseFrame {
        outputs,
        rel_bound,
        plan_tolerance,
        format,
        cache_hit,
        batch_size,
        latency_ns,
        stages: RequestStages {
            ingress_ns: stage_ns[0],
            batch_wait_ns: stage_ns[1],
            plan_ns: stage_ns[2],
            decompress_ns: stage_ns[3],
            forward_ns: stage_ns[4],
            respond_ns: stage_ns[5],
            egress_ns: stage_ns[6],
        },
    })
}

/// Wire error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the request — **retryable** backpressure;
    /// the connection stays open.
    QueueFull,
    /// The request was well-framed but semantically invalid (bad tolerance,
    /// wrong sample dim, wrong model id).
    Invalid,
    /// The server's compression roundtrip failed.
    Compression,
    /// The server is shutting down.
    Shutdown,
    /// The frame itself was malformed; the connection closes after this
    /// error frame because the byte stream is no longer synchronized.
    Malformed,
}

impl ErrorCode {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::Invalid => 2,
            ErrorCode::Compression => 3,
            ErrorCode::Shutdown => 4,
            ErrorCode::Malformed => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            1 => Ok(ErrorCode::QueueFull),
            2 => Ok(ErrorCode::Invalid),
            3 => Ok(ErrorCode::Compression),
            4 => Ok(ErrorCode::Shutdown),
            5 => Ok(ErrorCode::Malformed),
            other => Err(ProtoError::Corrupt(format!("unknown error code {other}"))),
        }
    }
}

/// A typed server-side error delivered to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// What failed.
    pub code: ErrorCode,
    /// `true` when the client may retry the same request on the same
    /// connection (backpressure).
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}{}: {}",
            self.code,
            if self.retryable { " (retryable)" } else { "" },
            self.message
        )
    }
}

impl ErrorFrame {
    /// Maps a serve-side error to its wire form.  [`ServeError::QueueFull`]
    /// becomes the retryable backpressure code — the connection stays open.
    pub fn from_serve(e: &ServeError) -> Self {
        match e {
            ServeError::QueueFull => ErrorFrame {
                code: ErrorCode::QueueFull,
                retryable: true,
                message: "admission queue full; retry".into(),
            },
            ServeError::Invalid(m) => ErrorFrame {
                code: ErrorCode::Invalid,
                retryable: false,
                message: m.clone(),
            },
            ServeError::Compression(m) => ErrorFrame {
                code: ErrorCode::Compression,
                retryable: false,
                message: m.clone(),
            },
            ServeError::Shutdown => ErrorFrame {
                code: ErrorCode::Shutdown,
                retryable: false,
                message: "server shutting down".into(),
            },
        }
    }

    /// The error frame sent for an unparsable frame, before closing.
    pub fn malformed(e: &ProtoError) -> Self {
        ErrorFrame {
            code: ErrorCode::Malformed,
            retryable: false,
            message: e.to_string(),
        }
    }
}

/// Encodes an error as a complete frame.  The message is truncated to fit
/// [`MAX_BODY`] rather than failing — an error path must not error.
pub fn encode_error(err: &ErrorFrame) -> Vec<u8> {
    let msg = err.message.as_bytes();
    let msg = &msg[..msg.len().min(4096)];
    let body_len = 1 + 1 + 4 + msg.len();
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Error, body_len);
    out.push(err.code.code());
    out.push(err.retryable as u8);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decodes an error body.
pub fn decode_error(body: &[u8]) -> Result<ErrorFrame, ProtoError> {
    let mut pos = 0usize;
    let code = ErrorCode::from_code(read_u8(body, &mut pos, "error code")?)?;
    let retryable = read_u8(body, &mut pos, "retryable flag")? != 0;
    let msg_len = read_len_u32(body, &mut pos, "message length")?;
    let remaining = body.len() - pos;
    if msg_len != remaining {
        return Err(ProtoError::Corrupt(format!(
            "error message declares {msg_len} bytes but frame carries {remaining}"
        )));
    }
    let message = String::from_utf8_lossy(&body[pos..]).into_owned();
    Ok(ErrorFrame {
        code,
        retryable,
        message,
    })
}

// ---------------------------------------------------------------------
// Telemetry frames (types 4–7)
// ---------------------------------------------------------------------

/// Exposition format selector of a [`MetricsRequestFrame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricsFormat {
    /// Prometheus text exposition of the whole registry.
    Prometheus,
    /// JSON exposition of the tiered series.
    Json,
    /// Typed binary dump ([`ScrapePayload`]) — what `errflow-cli top`
    /// decodes (the workspace carries no JSON parser).
    Binary,
}

impl MetricsFormat {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            MetricsFormat::Prometheus => 0,
            MetricsFormat::Json => 1,
            MetricsFormat::Binary => 2,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            0 => Ok(MetricsFormat::Prometheus),
            1 => Ok(MetricsFormat::Json),
            2 => Ok(MetricsFormat::Binary),
            other => Err(ProtoError::Corrupt(format!(
                "unknown metrics format code {other}"
            ))),
        }
    }
}

/// Tier selector meaning "all tiers".
pub const TIER_ALL: u8 = 255;

/// Cap on a scrape's per-series point window (tier retention never
/// exceeds this; a forged selector cannot request unbounded work).
pub const MAX_SCRAPE_WINDOW: u32 = 1 << 20;

/// A metrics scrape request: format, tier, and per-series point window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MetricsRequestFrame {
    /// Requested exposition format.
    pub format: MetricsFormat,
    /// Tier index, or [`TIER_ALL`].
    pub tier: u8,
    /// Max points per series (`0` = the tier's full retention).
    pub window: u32,
}

fn check_tier(tier: u8) -> Result<(), ProtoError> {
    if tier != TIER_ALL && tier as usize >= errflow_obs::timeseries::MAX_TIERS {
        return Err(ProtoError::Corrupt(format!(
            "tier selector {tier} out of range (max {}, or {TIER_ALL} for all)",
            errflow_obs::timeseries::MAX_TIERS - 1
        )));
    }
    Ok(())
}

/// Encodes a metrics request as a complete frame.  Rejects an oversized
/// tier selector or window at encode time (the server rejects them at
/// decode time with the same typed error).
pub fn encode_metrics_request(req: &MetricsRequestFrame) -> Result<Vec<u8>, ProtoError> {
    check_tier(req.tier)?;
    if req.window > MAX_SCRAPE_WINDOW {
        return Err(ProtoError::Corrupt(format!(
            "scrape window {} exceeds cap {MAX_SCRAPE_WINDOW}",
            req.window
        )));
    }
    let body_len = 1 + 1 + 4;
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::MetricsRequest, body_len);
    out.push(req.format.code());
    out.push(req.tier);
    out.extend_from_slice(&req.window.to_le_bytes());
    Ok(out)
}

/// Decodes a metrics request body, validating the tier selector and
/// window cap.
pub fn decode_metrics_request(body: &[u8]) -> Result<MetricsRequestFrame, ProtoError> {
    let mut pos = 0usize;
    let format = MetricsFormat::from_code(read_u8(body, &mut pos, "metrics format")?)?;
    let tier = read_u8(body, &mut pos, "tier selector")?;
    check_tier(tier)?;
    let window = read_len_u32(body, &mut pos, "scrape window")? as u32;
    if window > MAX_SCRAPE_WINDOW {
        return Err(ProtoError::Corrupt(format!(
            "scrape window {window} exceeds cap {MAX_SCRAPE_WINDOW}"
        )));
    }
    if pos != body.len() {
        return Err(ProtoError::Corrupt(format!(
            "metrics request carries {} trailing bytes",
            body.len() - pos
        )));
    }
    Ok(MetricsRequestFrame {
        format,
        tier,
        window,
    })
}

/// One histogram's point-in-time aggregates in a [`ScrapePayload`]
/// (buckets sparse: only non-zero log₂ buckets travel).
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramDump {
    /// Registry name.
    pub name: String,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// `(bucket_index, count)` pairs, index-ascending.
    pub buckets: Vec<(u8, u64)>,
}

/// The typed binary body of a [`MetricsFormat::Binary`] scrape: the
/// tiered series dump plus the current histogram states (for
/// distribution panels like bound margin, which need buckets rather than
/// pre-derived quantiles).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScrapePayload {
    /// Tiered series (see [`errflow_obs::timeseries::Sampler::dump`]).
    pub dump: TieredDump,
    /// Current cumulative histograms, name-sorted.
    pub hists: Vec<HistogramDump>,
}

/// The body of a metrics response: text for Prometheus/JSON, typed for
/// binary.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricsResponseFrame {
    /// Prometheus or JSON exposition text.
    Text {
        /// Which text format the body is.
        format: MetricsFormat,
        /// The exposition document.
        body: String,
    },
    /// Typed binary scrape payload.
    Binary(ScrapePayload),
}

/// Encodes a metrics response as a complete frame.
pub fn encode_metrics_response(resp: &MetricsResponseFrame) -> Result<Vec<u8>, ProtoError> {
    let mut body = Vec::new();
    match resp {
        MetricsResponseFrame::Text { format, body: text } => {
            if matches!(format, MetricsFormat::Binary) {
                return Err(ProtoError::Corrupt(
                    "text response cannot carry binary format code".into(),
                ));
            }
            body.push(format.code());
            body.extend_from_slice(&(text.len() as u32).to_le_bytes());
            body.extend_from_slice(text.as_bytes());
        }
        MetricsResponseFrame::Binary(p) => {
            body.push(MetricsFormat::Binary.code());
            body.extend_from_slice(&p.dump.now_ms.to_le_bytes());
            body.push(p.dump.tiers.len().min(255) as u8);
            for tier in p.dump.tiers.iter().take(255) {
                body.push(tier.tier);
                body.extend_from_slice(&tier.step_ms.to_le_bytes());
                body.extend_from_slice(&(tier.series.len() as u32).to_le_bytes());
                for s in &tier.series {
                    put_str(&mut body, &s.name);
                    body.extend_from_slice(&(s.points.len() as u32).to_le_bytes());
                    for pt in &s.points {
                        body.extend_from_slice(&pt.t_ms.to_le_bytes());
                        body.extend_from_slice(&pt.v.to_le_bytes());
                    }
                }
            }
            body.extend_from_slice(&(p.hists.len() as u32).to_le_bytes());
            for h in &p.hists {
                put_str(&mut body, &h.name);
                body.extend_from_slice(&h.count.to_le_bytes());
                body.extend_from_slice(&h.sum.to_le_bytes());
                body.push(h.buckets.len().min(64) as u8);
                for (idx, c) in h.buckets.iter().take(64) {
                    body.push(*idx);
                    body.extend_from_slice(&c.to_le_bytes());
                }
            }
        }
    }
    if body.len() > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body.len() as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    put_header(&mut out, FrameType::MetricsResponse, body.len());
    out.extend_from_slice(&body);
    Ok(out)
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    let b = s.as_bytes();
    let b = &b[..b.len().min(MAX_NAME)];
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Cap on a name field in telemetry frames.
const MAX_NAME: usize = 256;

fn read_str(body: &[u8], pos: &mut usize, what: &'static str) -> Result<String, ProtoError> {
    let len = read_len_u32(body, pos, what)?;
    if len > MAX_NAME {
        return Err(ProtoError::Corrupt(format!(
            "{what} length {len} exceeds cap {MAX_NAME}"
        )));
    }
    let end = pos
        .checked_add(len)
        .filter(|&e| e <= body.len())
        .ok_or_else(|| ProtoError::Corrupt(format!("truncated {what}")))?;
    let s = String::from_utf8_lossy(&body[*pos..end]).into_owned();
    *pos = end;
    Ok(s)
}

/// Checks a declared element count against the bytes actually remaining
/// so a forged count can never over-allocate.
fn check_count(
    n: usize,
    elem_bytes: usize,
    body: &[u8],
    pos: usize,
    what: &'static str,
) -> Result<(), ProtoError> {
    let need = n.checked_mul(elem_bytes);
    match need {
        Some(need) if need <= body.len().saturating_sub(pos) => Ok(()),
        _ => Err(ProtoError::Corrupt(format!(
            "{what} declares {n} elements but only {} bytes remain",
            body.len().saturating_sub(pos)
        ))),
    }
}

/// Decodes a metrics response body.
pub fn decode_metrics_response(body: &[u8]) -> Result<MetricsResponseFrame, ProtoError> {
    let mut pos = 0usize;
    let format = MetricsFormat::from_code(read_u8(body, &mut pos, "metrics format")?)?;
    match format {
        MetricsFormat::Prometheus | MetricsFormat::Json => {
            let len = read_len_u32(body, &mut pos, "exposition length")?;
            let remaining = body.len() - pos;
            if len != remaining {
                return Err(ProtoError::Corrupt(format!(
                    "exposition declares {len} bytes but frame carries {remaining}"
                )));
            }
            let text = String::from_utf8_lossy(&body[pos..]).into_owned();
            Ok(MetricsResponseFrame::Text { format, body: text })
        }
        MetricsFormat::Binary => {
            let now_ms = read_u64(body, &mut pos, "scrape timestamp")?;
            let n_tiers = read_u8(body, &mut pos, "tier count")? as usize;
            if n_tiers > errflow_obs::timeseries::MAX_TIERS {
                return Err(ProtoError::Corrupt(format!(
                    "tier count {n_tiers} exceeds cap {}",
                    errflow_obs::timeseries::MAX_TIERS
                )));
            }
            let mut tiers = Vec::with_capacity(n_tiers);
            for _ in 0..n_tiers {
                let tier = read_u8(body, &mut pos, "tier index")?;
                let step_ms = read_u64(body, &mut pos, "tier step")?;
                let n_series = read_len_u32(body, &mut pos, "series count")?;
                // A series is at least 8 bytes (name len + point count).
                check_count(n_series, 8, body, pos, "series count")?;
                let mut series = Vec::with_capacity(n_series);
                for _ in 0..n_series {
                    let name = read_str(body, &mut pos, "series name")?;
                    let n_points = read_len_u32(body, &mut pos, "point count")?;
                    check_count(n_points, 16, body, pos, "point count")?;
                    let mut points = Vec::with_capacity(n_points);
                    for _ in 0..n_points {
                        let t_ms = read_u64(body, &mut pos, "point timestamp")?;
                        let v = read_f64(body, &mut pos, "point value")?;
                        points.push(Point { t_ms, v });
                    }
                    series.push(SeriesDump { name, points });
                }
                tiers.push(TierDump {
                    tier,
                    step_ms,
                    series,
                });
            }
            let n_hists = read_len_u32(body, &mut pos, "histogram count")?;
            // A histogram is at least 21 bytes (name len + count + sum +
            // bucket count).
            check_count(n_hists, 21, body, pos, "histogram count")?;
            let mut hists = Vec::with_capacity(n_hists);
            for _ in 0..n_hists {
                let name = read_str(body, &mut pos, "histogram name")?;
                let count = read_u64(body, &mut pos, "histogram count field")?;
                let sum = read_u64(body, &mut pos, "histogram sum")?;
                let n_buckets = read_u8(body, &mut pos, "bucket count")? as usize;
                if n_buckets > 64 {
                    return Err(ProtoError::Corrupt(format!(
                        "bucket count {n_buckets} exceeds 64"
                    )));
                }
                let mut buckets = Vec::with_capacity(n_buckets);
                for _ in 0..n_buckets {
                    let idx = read_u8(body, &mut pos, "bucket index")?;
                    let c = read_u64(body, &mut pos, "bucket value")?;
                    buckets.push((idx, c));
                }
                hists.push(HistogramDump {
                    name,
                    count,
                    sum,
                    buckets,
                });
            }
            if pos != body.len() {
                return Err(ProtoError::Corrupt(format!(
                    "scrape payload carries {} trailing bytes",
                    body.len() - pos
                )));
            }
            Ok(MetricsResponseFrame::Binary(ScrapePayload {
                dump: TieredDump { now_ms, tiers },
                hists,
            }))
        }
    }
}

/// Encodes a health request (empty body).
pub fn encode_health_request() -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN);
    put_header(&mut out, FrameType::HealthRequest, 0);
    out
}

/// Validates a health request body (must be empty).
pub fn decode_health_request(body: &[u8]) -> Result<(), ProtoError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(ProtoError::Corrupt(format!(
            "health request carries {} unexpected bytes",
            body.len()
        )))
    }
}

/// Encodes the SLO states as a complete health-response frame.
pub fn encode_health_response(statuses: &[SloStatus]) -> Result<Vec<u8>, ProtoError> {
    let mut body = Vec::with_capacity(8 + statuses.len() * 48);
    body.extend_from_slice(&(statuses.len() as u32).to_le_bytes());
    for s in statuses {
        put_str(&mut body, &s.name);
        body.push(s.state.code());
        body.extend_from_slice(&s.value.to_le_bytes());
        body.extend_from_slice(&s.threshold.to_le_bytes());
    }
    if body.len() > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body.len() as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body.len());
    put_header(&mut out, FrameType::HealthResponse, body.len());
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes a health response body into SLO statuses.
pub fn decode_health_response(body: &[u8]) -> Result<Vec<SloStatus>, ProtoError> {
    let mut pos = 0usize;
    let n = read_len_u32(body, &mut pos, "slo count")?;
    // A status is at least 21 bytes (name len + state + value + threshold).
    check_count(n, 21, body, pos, "slo count")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = read_str(body, &mut pos, "slo name")?;
        let state = SloState::from_code(read_u8(body, &mut pos, "slo state")?);
        let value = read_f64(body, &mut pos, "slo value")?;
        let threshold = read_f64(body, &mut pos, "slo threshold")?;
        out.push(SloStatus {
            name,
            state,
            value,
            threshold,
        });
    }
    if pos != body.len() {
        return Err(ProtoError::Corrupt(format!(
            "health response carries {} trailing bytes",
            body.len() - pos
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            model_id: 0xDEAD_BEEF_CAFE_0001,
            rel_tolerance: 1e-3,
            norm: Norm::LInf,
            layout: PayloadLayout::SampleMajor,
            samples: vec![vec![1.0, -2.5, 0.25], vec![0.0, 3.5, -0.125]],
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        let frame = encode_request(&req).unwrap();
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Request);
        assert_eq!(frame.len(), HEADER_LEN + header.body_len);
        let decoded = decode_request(&frame[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = ResponseFrame {
            outputs: vec![vec![0.5, -1.5], vec![2.0, 4.0]],
            rel_bound: 9.5e-4,
            plan_tolerance: 1e-3,
            format: QuantFormat::Fp16,
            cache_hit: true,
            batch_size: 3,
            latency_ns: 123_456,
            stages: RequestStages {
                ingress_ns: 10,
                batch_wait_ns: 20,
                plan_ns: 30,
                decompress_ns: 40,
                forward_ns: 50,
                respond_ns: 60,
                egress_ns: 70,
            },
        };
        let frame = encode_response(&resp).unwrap();
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Response);
        let decoded = decode_response(&frame[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn error_roundtrip_and_serve_mapping() {
        let ef = ErrorFrame::from_serve(&ServeError::QueueFull);
        assert_eq!(ef.code, ErrorCode::QueueFull);
        assert!(ef.retryable, "backpressure must be retryable");
        let frame = encode_error(&ef);
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Error);
        assert_eq!(decode_error(&frame[HEADER_LEN..]).unwrap(), ef);

        let inv = ErrorFrame::from_serve(&ServeError::Invalid("dim".into()));
        assert_eq!(inv.code, ErrorCode::Invalid);
        assert!(!inv.retryable);
    }

    #[test]
    fn header_rejects_bad_magic_version_type() {
        let mut frame = encode_request(&sample_request()).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadMagic(_))
        ));

        let mut frame = encode_request(&sample_request()).unwrap();
        frame[4] = 99;
        assert_eq!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadVersion(99))
        );

        let mut frame = encode_request(&sample_request()).unwrap();
        frame[5] = 42;
        assert_eq!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadFrameType(42))
        );
    }

    #[test]
    fn header_rejects_nonzero_reserved_bytes() {
        // Each reserved byte independently (the high byte is shifted into
        // place, so it must trip the check on its own).
        for idx in [6usize, 7] {
            let mut frame = encode_request(&sample_request()).unwrap();
            frame[idx] = 1;
            assert!(
                matches!(
                    parse_header(&frame[..HEADER_LEN]),
                    Err(ProtoError::Corrupt(_))
                ),
                "reserved byte {idx} must reject"
            );
        }
    }

    #[test]
    fn header_rejects_forged_huge_length() {
        let mut frame = encode_request(&sample_request()).unwrap();
        frame[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BodyTooLarge(_)) | Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_header_is_typed_error() {
        let frame = encode_request(&sample_request()).unwrap();
        for cut in 0..HEADER_LEN {
            assert!(
                parse_header(&frame[..cut]).is_err(),
                "header cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn truncated_body_is_typed_error() {
        let frame = encode_request(&sample_request()).unwrap();
        let body = &frame[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "body cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn forged_sample_count_cannot_overallocate() {
        let frame = encode_request(&sample_request()).unwrap();
        let mut body = frame[HEADER_LEN..].to_vec();
        // n_samples lives right after model_id(8) + tol(8) + norm(1) +
        // layout(1) = offset 18.
        body[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_request(&body).unwrap_err();
        assert!(matches!(err, ProtoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn zero_length_body_is_typed_error() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_error(&[]).is_err());
    }

    #[test]
    fn ragged_payload_rejected_at_encode() {
        let mut req = sample_request();
        req.samples[1].pop();
        assert!(matches!(encode_request(&req), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn format_codes_roundtrip() {
        for f in QuantFormat::ALL {
            assert_eq!(format_from_code(format_code(f)).unwrap(), f);
        }
        assert!(format_from_code(200).is_err());
    }

    fn sample_payload() -> ScrapePayload {
        ScrapePayload {
            dump: TieredDump {
                now_ms: 1_723_000_000_000,
                tiers: vec![
                    TierDump {
                        tier: 0,
                        step_ms: 1000,
                        series: vec![
                            SeriesDump {
                                name: "serve.completed".into(),
                                points: vec![
                                    Point {
                                        t_ms: 1_723_000_000_000,
                                        v: 42.5,
                                    },
                                    Point {
                                        t_ms: 1_723_000_001_000,
                                        v: 43.0,
                                    },
                                ],
                            },
                            SeriesDump {
                                name: "serve.latency_ns.p99".into(),
                                points: vec![Point {
                                    t_ms: 1_723_000_001_000,
                                    v: 1.5e6,
                                }],
                            },
                        ],
                    },
                    TierDump {
                        tier: 1,
                        step_ms: 10_000,
                        series: vec![],
                    },
                ],
            },
            hists: vec![HistogramDump {
                name: "serve.bound_margin".into(),
                count: 7,
                sum: 99_000,
                buckets: vec![(10, 3), (13, 4)],
            }],
        }
    }

    #[test]
    fn metrics_request_roundtrip() {
        for (format, tier, window) in [
            (MetricsFormat::Prometheus, TIER_ALL, 0u32),
            (MetricsFormat::Json, 0, 60),
            (MetricsFormat::Binary, 2, 120),
        ] {
            let req = MetricsRequestFrame {
                format,
                tier,
                window,
            };
            let frame = encode_metrics_request(&req).unwrap();
            let header = parse_header(&frame[..HEADER_LEN]).unwrap();
            assert_eq!(header.frame_type, FrameType::MetricsRequest);
            assert_eq!(frame.len(), HEADER_LEN + header.body_len);
            assert_eq!(decode_metrics_request(&frame[HEADER_LEN..]).unwrap(), req);
        }
    }

    #[test]
    fn oversized_tier_selector_is_rejected_both_ways() {
        let req = MetricsRequestFrame {
            format: MetricsFormat::Prometheus,
            tier: 17,
            window: 0,
        };
        assert!(matches!(
            encode_metrics_request(&req),
            Err(ProtoError::Corrupt(_))
        ));
        // Forge it on the wire: encode a valid request, patch the tier.
        let frame = encode_metrics_request(&MetricsRequestFrame {
            format: MetricsFormat::Prometheus,
            tier: 0,
            window: 0,
        })
        .unwrap();
        let mut body = frame[HEADER_LEN..].to_vec();
        body[1] = 99;
        let err = decode_metrics_request(&body).unwrap_err();
        assert!(
            matches!(&err, ProtoError::Corrupt(m) if m.contains("tier selector")),
            "{err}"
        );
        // TIER_ALL is valid.
        body[1] = TIER_ALL;
        assert!(decode_metrics_request(&body).is_ok());
    }

    #[test]
    fn oversized_scrape_window_is_rejected() {
        let frame = encode_metrics_request(&MetricsRequestFrame {
            format: MetricsFormat::Json,
            tier: TIER_ALL,
            window: 1,
        })
        .unwrap();
        let mut body = frame[HEADER_LEN..].to_vec();
        body[2..6].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_metrics_request(&body),
            Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn metrics_text_response_roundtrip() {
        for format in [MetricsFormat::Prometheus, MetricsFormat::Json] {
            let resp = MetricsResponseFrame::Text {
                format,
                body: "# HELP x y\n# TYPE x counter\nx 1\n".into(),
            };
            let frame = encode_metrics_response(&resp).unwrap();
            let header = parse_header(&frame[..HEADER_LEN]).unwrap();
            assert_eq!(header.frame_type, FrameType::MetricsResponse);
            assert_eq!(decode_metrics_response(&frame[HEADER_LEN..]).unwrap(), resp);
        }
    }

    #[test]
    fn metrics_binary_response_roundtrip() {
        let resp = MetricsResponseFrame::Binary(sample_payload());
        let frame = encode_metrics_response(&resp).unwrap();
        let decoded = decode_metrics_response(&frame[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn metrics_binary_truncation_is_typed_error() {
        let frame =
            encode_metrics_response(&MetricsResponseFrame::Binary(sample_payload())).unwrap();
        let body = &frame[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_metrics_response(&body[..cut]).is_err(),
                "binary scrape cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn metrics_text_truncation_is_typed_error() {
        let frame = encode_metrics_response(&MetricsResponseFrame::Text {
            format: MetricsFormat::Prometheus,
            body: "# HELP m x\n# TYPE m counter\nm 1\n".into(),
        })
        .unwrap();
        let body = &frame[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_metrics_response(&body[..cut]).is_err(),
                "text scrape cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn forged_series_count_cannot_overallocate() {
        let frame =
            encode_metrics_response(&MetricsResponseFrame::Binary(sample_payload())).unwrap();
        let mut body = frame[HEADER_LEN..].to_vec();
        // Series count of tier 0 lives after format(1) + now_ms(8) +
        // n_tiers(1) + tier(1) + step_ms(8) = offset 19.
        body[19..23].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_metrics_response(&body).unwrap_err();
        assert!(matches!(err, ProtoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn health_frames_roundtrip() {
        let req = encode_health_request();
        let header = parse_header(&req[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::HealthRequest);
        assert_eq!(header.body_len, 0);
        assert!(decode_health_request(&[]).is_ok());
        assert!(decode_health_request(&[1]).is_err());

        let statuses = vec![
            SloStatus {
                name: "stage.forward.p99".into(),
                state: SloState::Ok,
                value: 1.2e6,
                threshold: 5e6,
            },
            SloStatus {
                name: "bound.cert_rate".into(),
                state: SloState::Breach,
                value: 0.97,
                threshold: 0.999,
            },
        ];
        let frame = encode_health_response(&statuses).unwrap();
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::HealthResponse);
        assert_eq!(
            decode_health_response(&frame[HEADER_LEN..]).unwrap(),
            statuses
        );
    }

    #[test]
    fn health_response_truncation_is_typed_error() {
        let statuses = vec![SloStatus {
            name: "x".into(),
            state: SloState::Warn,
            value: 1.0,
            threshold: 2.0,
        }];
        let frame = encode_health_response(&statuses).unwrap();
        let body = &frame[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_health_response(&body[..cut]).is_err(),
                "health cut at {cut} must fail"
            );
        }
        // Forged count.
        let mut forged = body.to_vec();
        forged[0..4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_health_response(&forged).is_err());
    }

    #[test]
    fn telemetry_frame_headers_use_checked_discipline() {
        // Forged magic/version/reserved on the new frame types reject
        // exactly like inference frames.
        let mut frame = encode_metrics_request(&MetricsRequestFrame {
            format: MetricsFormat::Prometheus,
            tier: TIER_ALL,
            window: 0,
        })
        .unwrap();
        frame[0] = b'Z';
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadMagic(_))
        ));
        let mut frame = encode_health_request();
        frame[4] = 9;
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadVersion(9))
        ));
        let mut frame = encode_health_request();
        frame[6] = 7;
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::Corrupt(_))
        ));
    }
}
