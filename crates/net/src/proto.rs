//! The errflow wire protocol: compact length-prefixed binary frames.
//!
//! Every frame is a fixed 16-byte header followed by a body:
//!
//! ```text
//!  offset  size  field
//!  0       4     magic  b"EFNP"
//!  4       1     protocol version (1)
//!  5       1     frame type: 1 = Request, 2 = Response, 3 = Error
//!  6       2     reserved (must be 0)
//!  8       8     body length, u64 LE (≤ MAX_BODY)
//! ```
//!
//! All multi-byte fields are little-endian.  Header and body fields are
//! parsed with the checked readers from [`errflow_compress::traits`] —
//! the same helpers the codec decoders use for untrusted streams — so a
//! truncated or forged field yields a typed [`ProtoError`], never a panic
//! or an unchecked allocation.
//!
//! One request frame maps to one response **or** one error frame, in
//! order; the protocol has no request ids (a connection is a closed loop —
//! clients wanting pipelining open several connections).  Error frames
//! carry a `retryable` flag: backpressure ([`ErrorCode::QueueFull`]) is
//! retryable and the connection stays open; malformed framing is not (the
//! byte stream is unsynchronized after it, so the server closes after the
//! error frame is flushed).

use errflow_compress::traits::{read_f32, read_f64, read_len_u32, read_len_u64, read_u64, read_u8};
use errflow_compress::CompressError;
use errflow_pipeline::planner::PayloadLayout;
use errflow_quant::QuantFormat;
use errflow_serve::{RequestStages, ServeError};
use errflow_tensor::norms::Norm;

/// Frame magic: "errflow net protocol".
pub const MAGIC: [u8; 4] = *b"EFNP";
/// Protocol version carried in every frame header.
pub const VERSION: u8 = 1;
/// Fixed frame-header size in bytes.
pub const HEADER_LEN: usize = 16;
/// Upper bound on a frame body: a forged length field beyond this is
/// rejected before any allocation (64 MiB ≈ 16 Mi f32 samples).
pub const MAX_BODY: usize = 1 << 26;

/// What a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameType {
    /// Client → server inference request.
    Request,
    /// Server → client fulfilled response.
    Response,
    /// Server → client typed error.
    Error,
}

impl FrameType {
    /// Wire code of this frame type.
    pub fn code(self) -> u8 {
        match self {
            FrameType::Request => 1,
            FrameType::Response => 2,
            FrameType::Error => 3,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            1 => Ok(FrameType::Request),
            2 => Ok(FrameType::Response),
            3 => Ok(FrameType::Error),
            other => Err(ProtoError::BadFrameType(other)),
        }
    }
}

/// Typed protocol failures.  Every malformed input maps to one of these —
/// decoding never panics and never allocates from an unchecked length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProtoError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown frame-type code.
    BadFrameType(u8),
    /// Header-declared body length exceeds [`MAX_BODY`].
    BodyTooLarge(u64),
    /// Truncated or internally inconsistent frame content.
    Corrupt(String),
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtoError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            ProtoError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            ProtoError::BadFrameType(t) => write!(f, "unknown frame type {t}"),
            ProtoError::BodyTooLarge(n) => {
                write!(f, "declared body length {n} exceeds cap {MAX_BODY}")
            }
            ProtoError::Corrupt(m) => write!(f, "corrupt frame: {m}"),
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<CompressError> for ProtoError {
    fn from(e: CompressError) -> Self {
        ProtoError::Corrupt(e.to_string())
    }
}

/// A validated frame header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameHeader {
    /// What the body decodes as.
    pub frame_type: FrameType,
    /// Exact body length that follows the header.
    pub body_len: usize,
}

/// Parses and validates a frame header from the first [`HEADER_LEN`] bytes
/// of `buf`.  Magic and version are checked before the length field is
/// trusted, so a garbage stream fails fast.
pub fn parse_header(buf: &[u8]) -> Result<FrameHeader, ProtoError> {
    let mut pos = 0usize;
    let mut magic = [0u8; 4];
    for b in &mut magic {
        *b = read_u8(buf, &mut pos, "frame magic")?;
    }
    if magic != MAGIC {
        return Err(ProtoError::BadMagic(magic));
    }
    let version = read_u8(buf, &mut pos, "protocol version")?;
    if version != VERSION {
        return Err(ProtoError::BadVersion(version));
    }
    let type_code = read_u8(buf, &mut pos, "frame type")?;
    let frame_type = FrameType::from_code(type_code)?;
    let reserved = (read_u8(buf, &mut pos, "reserved")? as u16)
        | ((read_u8(buf, &mut pos, "reserved")? as u16) << 8);
    if reserved != 0 {
        return Err(ProtoError::Corrupt("nonzero reserved header bytes".into()));
    }
    let body_len = read_len_u64(buf, &mut pos, "frame body length")?;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    Ok(FrameHeader {
        frame_type,
        body_len,
    })
}

fn put_header(out: &mut Vec<u8>, frame_type: FrameType, body_len: usize) {
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    out.push(frame_type.code());
    out.extend_from_slice(&[0u8, 0u8]);
    out.extend_from_slice(&(body_len as u64).to_le_bytes());
}

/// Norm wire codes (shared with the serve plan key encoding).
fn norm_code(norm: Norm) -> u8 {
    match norm {
        Norm::L2 => 0,
        Norm::LInf => 1,
    }
}

fn norm_from_code(code: u8) -> Result<Norm, ProtoError> {
    match code {
        0 => Ok(Norm::L2),
        1 => Ok(Norm::LInf),
        other => Err(ProtoError::Corrupt(format!("unknown norm code {other}"))),
    }
}

fn layout_code(layout: PayloadLayout) -> u8 {
    match layout {
        PayloadLayout::FeatureMajor => 0,
        PayloadLayout::SampleMajor => 1,
    }
}

fn layout_from_code(code: u8) -> Result<PayloadLayout, ProtoError> {
    match code {
        0 => Ok(PayloadLayout::FeatureMajor),
        1 => Ok(PayloadLayout::SampleMajor),
        other => Err(ProtoError::Corrupt(format!("unknown layout code {other}"))),
    }
}

/// Wire code of a quantization format (index into [`QuantFormat::ALL`]).
pub fn format_code(f: QuantFormat) -> u8 {
    match f {
        QuantFormat::Fp32 => 0,
        QuantFormat::Tf32 => 1,
        QuantFormat::Fp16 => 2,
        QuantFormat::Bf16 => 3,
        QuantFormat::Int8 => 4,
    }
}

/// Inverse of [`format_code`].
pub fn format_from_code(code: u8) -> Result<QuantFormat, ProtoError> {
    QuantFormat::ALL
        .get(code as usize)
        .copied()
        .ok_or_else(|| ProtoError::Corrupt(format!("unknown format code {code}")))
}

/// A decoded inference request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestFrame {
    /// Served-model identifier the client expects (`0` = any model).
    pub model_id: u64,
    /// Relative QoI tolerance.
    pub rel_tolerance: f64,
    /// Norm the tolerance is expressed in.
    pub norm: Norm,
    /// Payload flattening layout.
    pub layout: PayloadLayout,
    /// Input samples (rectangular: every row has the same length).
    pub samples: Vec<Vec<f32>>,
}

/// Encodes a request as a complete frame (header + body).  Fails on a
/// ragged payload — the wire format carries one `(n, dim)` pair.
pub fn encode_request(req: &RequestFrame) -> Result<Vec<u8>, ProtoError> {
    let n = req.samples.len();
    let dim = req.samples.first().map_or(0, Vec::len);
    if req.samples.iter().any(|s| s.len() != dim) {
        return Err(ProtoError::Corrupt("ragged request payload".into()));
    }
    let body_len = 8 + 8 + 1 + 1 + 4 + 4 + n * dim * 4;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Request, body_len);
    out.extend_from_slice(&req.model_id.to_le_bytes());
    out.extend_from_slice(&req.rel_tolerance.to_le_bytes());
    out.push(norm_code(req.norm));
    out.push(layout_code(req.layout));
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for s in &req.samples {
        for v in s {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a request body (the bytes after the header).  The declared
/// `(n_samples, dim)` pair must account for exactly the remaining bytes,
/// so a forged count can neither over-allocate nor leave trailing bytes.
pub fn decode_request(body: &[u8]) -> Result<RequestFrame, ProtoError> {
    let mut pos = 0usize;
    let model_id = read_u64(body, &mut pos, "model id")?;
    let rel_tolerance = read_f64(body, &mut pos, "tolerance")?;
    let norm = norm_from_code(read_u8(body, &mut pos, "norm")?)?;
    let layout = layout_from_code(read_u8(body, &mut pos, "layout")?)?;
    let n = read_len_u32(body, &mut pos, "sample count")?;
    let dim = read_len_u32(body, &mut pos, "sample dim")?;
    let payload_bytes = n
        .checked_mul(dim)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| ProtoError::Corrupt("sample count × dim overflows".into()))?;
    let remaining = body.len() - pos;
    if payload_bytes != remaining {
        return Err(ProtoError::Corrupt(format!(
            "payload declares {payload_bytes} bytes but frame carries {remaining}"
        )));
    }
    let mut samples = Vec::with_capacity(n.min(MAX_BODY / 4));
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(read_f32(body, &mut pos, "sample value")?);
        }
        samples.push(row);
    }
    Ok(RequestFrame {
        model_id,
        rel_tolerance,
        norm,
        layout,
        samples,
    })
}

/// A decoded inference response: outputs plus the certificate and the
/// per-stage timing breakdown (including the net-frontend `ingress` and
/// `egress` stages).
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseFrame {
    /// One prediction per request sample, in order.
    pub outputs: Vec<Vec<f32>>,
    /// Certified relative QoI error bound.
    pub rel_bound: f64,
    /// Tolerance the plan was computed at (the bucket floor).
    pub plan_tolerance: f64,
    /// Weight format the plan selected.
    pub format: QuantFormat,
    /// `true` when the plan came from the cache.
    pub cache_hit: bool,
    /// Jobs that shared this batched forward pass.
    pub batch_size: u32,
    /// Server-side end-to-end latency in nanoseconds (admission →
    /// fulfill; excludes ingress/egress, which are reported as stages).
    pub latency_ns: u64,
    /// Per-stage timing breakdown.
    pub stages: RequestStages,
}

/// Encodes a response as a complete frame.  Fails on ragged outputs.
pub fn encode_response(resp: &ResponseFrame) -> Result<Vec<u8>, ProtoError> {
    let n = resp.outputs.len();
    let dim = resp.outputs.first().map_or(0, Vec::len);
    if resp.outputs.iter().any(|o| o.len() != dim) {
        return Err(ProtoError::Corrupt("ragged response outputs".into()));
    }
    let body_len = 8 + 8 + 1 + 1 + 4 + 8 + 7 * 8 + 4 + 4 + n * dim * 4;
    if body_len > MAX_BODY {
        return Err(ProtoError::BodyTooLarge(body_len as u64));
    }
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Response, body_len);
    out.extend_from_slice(&resp.rel_bound.to_le_bytes());
    out.extend_from_slice(&resp.plan_tolerance.to_le_bytes());
    out.push(format_code(resp.format));
    out.push(resp.cache_hit as u8);
    out.extend_from_slice(&resp.batch_size.to_le_bytes());
    out.extend_from_slice(&resp.latency_ns.to_le_bytes());
    let s = &resp.stages;
    for ns in [
        s.ingress_ns,
        s.batch_wait_ns,
        s.plan_ns,
        s.decompress_ns,
        s.forward_ns,
        s.respond_ns,
        s.egress_ns,
    ] {
        out.extend_from_slice(&ns.to_le_bytes());
    }
    out.extend_from_slice(&(n as u32).to_le_bytes());
    out.extend_from_slice(&(dim as u32).to_le_bytes());
    for o in &resp.outputs {
        for v in o {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Decodes a response body.
pub fn decode_response(body: &[u8]) -> Result<ResponseFrame, ProtoError> {
    let mut pos = 0usize;
    let rel_bound = read_f64(body, &mut pos, "rel bound")?;
    let plan_tolerance = read_f64(body, &mut pos, "plan tolerance")?;
    let format = format_from_code(read_u8(body, &mut pos, "format")?)?;
    let cache_hit = read_u8(body, &mut pos, "cache hit")? != 0;
    let batch_size = read_len_u32(body, &mut pos, "batch size")? as u32;
    let latency_ns = read_u64(body, &mut pos, "latency")?;
    let mut stage_ns = [0u64; 7];
    for ns in &mut stage_ns {
        *ns = read_u64(body, &mut pos, "stage ns")?;
    }
    let n = read_len_u32(body, &mut pos, "output count")?;
    let dim = read_len_u32(body, &mut pos, "output dim")?;
    let payload_bytes = n
        .checked_mul(dim)
        .and_then(|e| e.checked_mul(4))
        .ok_or_else(|| ProtoError::Corrupt("output count × dim overflows".into()))?;
    let remaining = body.len() - pos;
    if payload_bytes != remaining {
        return Err(ProtoError::Corrupt(format!(
            "outputs declare {payload_bytes} bytes but frame carries {remaining}"
        )));
    }
    let mut outputs = Vec::with_capacity(n.min(MAX_BODY / 4));
    for _ in 0..n {
        let mut row = Vec::with_capacity(dim);
        for _ in 0..dim {
            row.push(read_f32(body, &mut pos, "output value")?);
        }
        outputs.push(row);
    }
    Ok(ResponseFrame {
        outputs,
        rel_bound,
        plan_tolerance,
        format,
        cache_hit,
        batch_size,
        latency_ns,
        stages: RequestStages {
            ingress_ns: stage_ns[0],
            batch_wait_ns: stage_ns[1],
            plan_ns: stage_ns[2],
            decompress_ns: stage_ns[3],
            forward_ns: stage_ns[4],
            respond_ns: stage_ns[5],
            egress_ns: stage_ns[6],
        },
    })
}

/// Wire error codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// Admission control rejected the request — **retryable** backpressure;
    /// the connection stays open.
    QueueFull,
    /// The request was well-framed but semantically invalid (bad tolerance,
    /// wrong sample dim, wrong model id).
    Invalid,
    /// The server's compression roundtrip failed.
    Compression,
    /// The server is shutting down.
    Shutdown,
    /// The frame itself was malformed; the connection closes after this
    /// error frame because the byte stream is no longer synchronized.
    Malformed,
}

impl ErrorCode {
    /// Wire code.
    pub fn code(self) -> u8 {
        match self {
            ErrorCode::QueueFull => 1,
            ErrorCode::Invalid => 2,
            ErrorCode::Compression => 3,
            ErrorCode::Shutdown => 4,
            ErrorCode::Malformed => 5,
        }
    }

    fn from_code(code: u8) -> Result<Self, ProtoError> {
        match code {
            1 => Ok(ErrorCode::QueueFull),
            2 => Ok(ErrorCode::Invalid),
            3 => Ok(ErrorCode::Compression),
            4 => Ok(ErrorCode::Shutdown),
            5 => Ok(ErrorCode::Malformed),
            other => Err(ProtoError::Corrupt(format!("unknown error code {other}"))),
        }
    }
}

/// A typed server-side error delivered to the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ErrorFrame {
    /// What failed.
    pub code: ErrorCode,
    /// `true` when the client may retry the same request on the same
    /// connection (backpressure).
    pub retryable: bool,
    /// Human-readable detail.
    pub message: String,
}

impl std::fmt::Display for ErrorFrame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:?}{}: {}",
            self.code,
            if self.retryable { " (retryable)" } else { "" },
            self.message
        )
    }
}

impl ErrorFrame {
    /// Maps a serve-side error to its wire form.  [`ServeError::QueueFull`]
    /// becomes the retryable backpressure code — the connection stays open.
    pub fn from_serve(e: &ServeError) -> Self {
        match e {
            ServeError::QueueFull => ErrorFrame {
                code: ErrorCode::QueueFull,
                retryable: true,
                message: "admission queue full; retry".into(),
            },
            ServeError::Invalid(m) => ErrorFrame {
                code: ErrorCode::Invalid,
                retryable: false,
                message: m.clone(),
            },
            ServeError::Compression(m) => ErrorFrame {
                code: ErrorCode::Compression,
                retryable: false,
                message: m.clone(),
            },
            ServeError::Shutdown => ErrorFrame {
                code: ErrorCode::Shutdown,
                retryable: false,
                message: "server shutting down".into(),
            },
        }
    }

    /// The error frame sent for an unparsable frame, before closing.
    pub fn malformed(e: &ProtoError) -> Self {
        ErrorFrame {
            code: ErrorCode::Malformed,
            retryable: false,
            message: e.to_string(),
        }
    }
}

/// Encodes an error as a complete frame.  The message is truncated to fit
/// [`MAX_BODY`] rather than failing — an error path must not error.
pub fn encode_error(err: &ErrorFrame) -> Vec<u8> {
    let msg = err.message.as_bytes();
    let msg = &msg[..msg.len().min(4096)];
    let body_len = 1 + 1 + 4 + msg.len();
    let mut out = Vec::with_capacity(HEADER_LEN + body_len);
    put_header(&mut out, FrameType::Error, body_len);
    out.push(err.code.code());
    out.push(err.retryable as u8);
    out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
    out.extend_from_slice(msg);
    out
}

/// Decodes an error body.
pub fn decode_error(body: &[u8]) -> Result<ErrorFrame, ProtoError> {
    let mut pos = 0usize;
    let code = ErrorCode::from_code(read_u8(body, &mut pos, "error code")?)?;
    let retryable = read_u8(body, &mut pos, "retryable flag")? != 0;
    let msg_len = read_len_u32(body, &mut pos, "message length")?;
    let remaining = body.len() - pos;
    if msg_len != remaining {
        return Err(ProtoError::Corrupt(format!(
            "error message declares {msg_len} bytes but frame carries {remaining}"
        )));
    }
    let message = String::from_utf8_lossy(&body[pos..]).into_owned();
    Ok(ErrorFrame {
        code,
        retryable,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_request() -> RequestFrame {
        RequestFrame {
            model_id: 0xDEAD_BEEF_CAFE_0001,
            rel_tolerance: 1e-3,
            norm: Norm::LInf,
            layout: PayloadLayout::SampleMajor,
            samples: vec![vec![1.0, -2.5, 0.25], vec![0.0, 3.5, -0.125]],
        }
    }

    #[test]
    fn request_roundtrip() {
        let req = sample_request();
        let frame = encode_request(&req).unwrap();
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Request);
        assert_eq!(frame.len(), HEADER_LEN + header.body_len);
        let decoded = decode_request(&frame[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, req);
    }

    #[test]
    fn response_roundtrip() {
        let resp = ResponseFrame {
            outputs: vec![vec![0.5, -1.5], vec![2.0, 4.0]],
            rel_bound: 9.5e-4,
            plan_tolerance: 1e-3,
            format: QuantFormat::Fp16,
            cache_hit: true,
            batch_size: 3,
            latency_ns: 123_456,
            stages: RequestStages {
                ingress_ns: 10,
                batch_wait_ns: 20,
                plan_ns: 30,
                decompress_ns: 40,
                forward_ns: 50,
                respond_ns: 60,
                egress_ns: 70,
            },
        };
        let frame = encode_response(&resp).unwrap();
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Response);
        let decoded = decode_response(&frame[HEADER_LEN..]).unwrap();
        assert_eq!(decoded, resp);
    }

    #[test]
    fn error_roundtrip_and_serve_mapping() {
        let ef = ErrorFrame::from_serve(&ServeError::QueueFull);
        assert_eq!(ef.code, ErrorCode::QueueFull);
        assert!(ef.retryable, "backpressure must be retryable");
        let frame = encode_error(&ef);
        let header = parse_header(&frame[..HEADER_LEN]).unwrap();
        assert_eq!(header.frame_type, FrameType::Error);
        assert_eq!(decode_error(&frame[HEADER_LEN..]).unwrap(), ef);

        let inv = ErrorFrame::from_serve(&ServeError::Invalid("dim".into()));
        assert_eq!(inv.code, ErrorCode::Invalid);
        assert!(!inv.retryable);
    }

    #[test]
    fn header_rejects_bad_magic_version_type() {
        let mut frame = encode_request(&sample_request()).unwrap();
        frame[0] = b'X';
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadMagic(_))
        ));

        let mut frame = encode_request(&sample_request()).unwrap();
        frame[4] = 99;
        assert_eq!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadVersion(99))
        );

        let mut frame = encode_request(&sample_request()).unwrap();
        frame[5] = 42;
        assert_eq!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BadFrameType(42))
        );
    }

    #[test]
    fn header_rejects_nonzero_reserved_bytes() {
        // Each reserved byte independently (the high byte is shifted into
        // place, so it must trip the check on its own).
        for idx in [6usize, 7] {
            let mut frame = encode_request(&sample_request()).unwrap();
            frame[idx] = 1;
            assert!(
                matches!(
                    parse_header(&frame[..HEADER_LEN]),
                    Err(ProtoError::Corrupt(_))
                ),
                "reserved byte {idx} must reject"
            );
        }
    }

    #[test]
    fn header_rejects_forged_huge_length() {
        let mut frame = encode_request(&sample_request()).unwrap();
        frame[8..16].copy_from_slice(&(u64::MAX).to_le_bytes());
        assert!(matches!(
            parse_header(&frame[..HEADER_LEN]),
            Err(ProtoError::BodyTooLarge(_)) | Err(ProtoError::Corrupt(_))
        ));
    }

    #[test]
    fn truncated_header_is_typed_error() {
        let frame = encode_request(&sample_request()).unwrap();
        for cut in 0..HEADER_LEN {
            assert!(
                parse_header(&frame[..cut]).is_err(),
                "header cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn truncated_body_is_typed_error() {
        let frame = encode_request(&sample_request()).unwrap();
        let body = &frame[HEADER_LEN..];
        for cut in 0..body.len() {
            assert!(
                decode_request(&body[..cut]).is_err(),
                "body cut at {cut} must fail"
            );
        }
    }

    #[test]
    fn forged_sample_count_cannot_overallocate() {
        let frame = encode_request(&sample_request()).unwrap();
        let mut body = frame[HEADER_LEN..].to_vec();
        // n_samples lives right after model_id(8) + tol(8) + norm(1) +
        // layout(1) = offset 18.
        body[18..22].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_request(&body).unwrap_err();
        assert!(matches!(err, ProtoError::Corrupt(_)), "{err}");
    }

    #[test]
    fn zero_length_body_is_typed_error() {
        assert!(decode_request(&[]).is_err());
        assert!(decode_response(&[]).is_err());
        assert!(decode_error(&[]).is_err());
    }

    #[test]
    fn ragged_payload_rejected_at_encode() {
        let mut req = sample_request();
        req.samples[1].pop();
        assert!(matches!(encode_request(&req), Err(ProtoError::Corrupt(_))));
    }

    #[test]
    fn format_codes_roundtrip() {
        for f in QuantFormat::ALL {
            assert_eq!(format_from_code(format_code(f)).unwrap(), f);
        }
        assert!(format_from_code(200).is_err());
    }
}
