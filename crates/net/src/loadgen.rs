//! Closed-loop load generation over the real socket path.
//!
//! The in-process loadgen ([`errflow_serve::loadgen`]) measures the serve
//! pipeline with ingress/egress at zero; this one drives the same workload
//! (same payload walk, same tolerance cycling, same certificate asserts)
//! through [`NetClient`] connections against a live [`crate::server::NetServer`],
//! so the per-request timings include real framing, syscalls, and loopback
//! queueing.  The headline number is `overhead_p50_us`: client-observed
//! round-trip p50 minus server-side end-to-end p50, i.e. what the network
//! frontend costs on top of in-process dispatch.

use crate::client::NetClient;
use crate::proto::RequestFrame;
use errflow_nn::Model;
use errflow_serve::loadgen::{next_payload, BenchSummary, LoadgenConfig};
use errflow_serve::server::Server;
use errflow_serve::stats::{LatencyHistogram, LatencySummary};
use errflow_tensor::rng::StdRng;
use errflow_tensor::sync::lock_recover;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Results of one socket-path load run: the in-process summary plus the
/// wire-level view.
#[derive(Debug, Clone)]
pub struct NetBenchSummary {
    /// Server-side aggregates (same shape as the in-process bench).
    pub base: BenchSummary,
    /// Client-observed round-trip latency (encode → response decoded).
    pub rtt: LatencySummary,
    /// Frontend overhead: the exact median of per-request paired
    /// differences (client RTT minus the server-reported `latency_ns`
    /// carried in that same response), in microseconds.  Pairing per
    /// request avoids the log2-histogram bucket quantization that makes
    /// `rtt.p50_us - base.latency.p50_us` jump in powers of two.  The
    /// acceptance target is ~100µs on loopback.
    pub overhead_p50_us: f64,
    /// Retryable backpressure error frames received (each was retried).
    pub net_rejections: u64,
}

impl NetBenchSummary {
    /// JSON with the base summary's fields plus a `net` object spliced in.
    pub fn to_json(&self) -> String {
        let num = |v: f64| {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".to_string()
            }
        };
        let base = self.base.to_json();
        let net = format!(
            concat!(
                "\"net\":{{\"rtt_us\":{{\"min\":{},\"mean\":{},\"p50\":{},\"p99\":{},\"max\":{}}},",
                "\"overhead_p50_us\":{},\"rejections\":{}}},"
            ),
            num(self.rtt.min_us),
            num(self.rtt.mean_us),
            num(self.rtt.p50_us),
            num(self.rtt.p99_us),
            num(self.rtt.max_us),
            num(self.overhead_p50_us),
            self.net_rejections,
        );
        // Splice right after the opening brace of the base object.
        let mut out = String::with_capacity(base.len() + net.len());
        out.push('{');
        out.push_str(&net);
        out.push_str(&base[1..]);
        out
    }
}

/// Drives `addr` with the closed-loop workload from `cfg`, one
/// [`NetClient`] connection per client thread.  `server` is the in-process
/// handle backing the frontend — used only to snapshot stats and the input
/// dimension; all requests travel over the socket.
///
/// # Panics
/// On certificate violations, non-retryable server errors, or transport
/// failures — this is a test harness and must surface bugs loudly.
pub fn run_net_loadgen<M: Model + Clone + Send + Sync + 'static>(
    server: &Server<M>,
    addr: SocketAddr,
    cfg: &LoadgenConfig,
) -> NetBenchSummary {
    assert!(cfg.clients > 0 && cfg.requests_per_client > 0, "empty load");
    assert!(!cfg.tolerances.is_empty(), "need at least one tolerance");
    let d = server.input_dim();
    let rejections = AtomicU64::new(0);
    let max_bound_bits = AtomicU64::new(0f64.to_bits());
    let rtt = LatencyHistogram::new();
    // Per-request RTT − server-latency differences, kept exact for the
    // overhead percentile (runs are small enough to store them all).
    let overheads: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..cfg.clients {
            let rejections = &rejections;
            let max_bound_bits = &max_bound_bits;
            let rtt = &rtt;
            let overheads = &overheads;
            let cfg = &*cfg;
            scope.spawn(move || {
                // audit:allow(panic-reach) the load generator is a test
                // harness: transport failures must surface loudly.
                let mut client = NetClient::connect(addr).expect("connect to net frontend");
                client
                    .set_read_timeout(Some(Duration::from_secs(30)))
                    // audit:allow(panic-reach) same harness rule.
                    .expect("set read timeout");
                let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_add(c as u64 * 7919));
                let mut state: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.5f32..0.5)).collect();
                for r in 0..cfg.requests_per_client {
                    let tol = cfg.tolerances[r % cfg.tolerances.len()];
                    let samples = next_payload(&mut rng, &mut state, cfg.samples_per_request);
                    let frame = RequestFrame {
                        model_id: 0, // 0 = "any model"
                        rel_tolerance: tol,
                        norm: cfg.norm,
                        layout: cfg.layout,
                        samples,
                    };
                    let resp = loop {
                        let sent = Instant::now();
                        match client.request(&frame) {
                            Ok(resp) => {
                                let trip = sent.elapsed();
                                rtt.record(trip);
                                lock_recover(&overheads)
                                    .push((trip.as_nanos() as u64).saturating_sub(resp.latency_ns));
                                break resp;
                            }
                            Err(e) if e.retryable() => {
                                // Backpressure frame: the connection stays
                                // usable; retry after a short backoff.
                                rejections.fetch_add(1, Ordering::Relaxed);
                                std::thread::sleep(Duration::from_micros(200));
                            }
                            // audit:allow(panic-reach) harness rule: a failed
                            // request is a bug, not an operational state.
                            Err(e) => panic!("net request failed: {e}"),
                        }
                    };
                    assert!(
                        resp.rel_bound <= tol,
                        "certificate violated over the wire: bound {} > tolerance {tol}",
                        resp.rel_bound
                    );
                    assert_eq!(resp.outputs.len(), cfg.samples_per_request);
                    assert!(
                        resp.stages.ingress_ns > 0 || resp.stages.egress_ns > 0,
                        "wire responses must carry frontend stage timings"
                    );
                    let mut cur = max_bound_bits.load(Ordering::Relaxed);
                    while f64::from_bits(cur) < resp.rel_bound {
                        match max_bound_bits.compare_exchange_weak(
                            cur,
                            resp.rel_bound.to_bits(),
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => break,
                            Err(seen) => cur = seen,
                        }
                    }
                }
            });
        }
    });
    let wall_secs = t0.elapsed().as_secs_f64();

    // The egress stage is stamped on the io thread *after* the response
    // bytes hit the socket, so a client can observe its reply a moment
    // before the final stamp lands.  Settle until every completed request
    // has its egress sample (bounded, normally instant) so the snapshot
    // reflects the whole run.
    let requests = (cfg.clients * cfg.requests_per_client) as u64;
    let settle = Instant::now();
    while server.stats().stages.egress.count < requests
        && settle.elapsed() < Duration::from_millis(500)
    {
        std::thread::sleep(Duration::from_millis(2));
    }

    let snap = server.stats();
    let base = BenchSummary::from_stats(
        &snap,
        cfg.clients,
        requests,
        rejections.load(Ordering::Relaxed),
        wall_secs,
        f64::from_bits(max_bound_bits.load(Ordering::Relaxed)),
    );
    let rtt = rtt.summary();
    let mut diffs = lock_recover(&overheads).clone();
    diffs.sort_unstable();
    let overhead_p50_us = diffs
        .get(diffs.len() / 2)
        .map_or(f64::NAN, |&ns| ns as f64 / 1e3);
    NetBenchSummary {
        base,
        rtt,
        overhead_p50_us,
        net_rejections: rejections.load(Ordering::Relaxed),
    }
}
