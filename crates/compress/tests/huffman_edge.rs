//! Edge cases of the Huffman/RLE entropy stage that the fast decode paths
//! must get exactly right: run lengths straddling the RLE threshold,
//! payloads that *contain* the run-marker sentinel as data, codes longer
//! than the prefix-table width, and degenerate single-symbol streams.
//!
//! Every case checks byte-for-byte stream stability via the frozen
//! seed-path decoder in `errflow_compress::reference`, so "optimized" can
//! never silently come to mean "different format".

use errflow_compress::huffman::{decode, encode, MIN_RUN, PEEK, RUN_MARKER};
use errflow_compress::reference;
use errflow_tensor::rng::StdRng;

/// Round-trips through the optimized decoder AND the frozen seed-path
/// decoder, asserting both agree with the input.
fn roundtrip_both(symbols: &[u32]) {
    let stream = encode(symbols);
    let (fast, consumed) = decode(&stream).expect("optimized decode");
    assert_eq!(fast, symbols, "optimized decoder mismatch");
    assert_eq!(consumed, stream.len());
    let (slow, ref_consumed) = reference::huffman_decode(&stream).expect("reference decode");
    assert_eq!(slow, symbols, "reference decoder mismatch");
    assert_eq!(ref_consumed, consumed);
}

#[test]
fn runs_at_and_adjacent_to_min_run() {
    // Runs of length MIN_RUN−1 stay literal; MIN_RUN and MIN_RUN+1 collapse.
    for run_len in [MIN_RUN - 1, MIN_RUN, MIN_RUN + 1] {
        let mut symbols = vec![1u32, 2, 3];
        symbols.extend(std::iter::repeat(7u32).take(run_len));
        symbols.extend_from_slice(&[4, 5, 6]);
        roundtrip_both(&symbols);
    }
}

#[test]
fn run_at_stream_start_and_end() {
    let mut head_run = vec![9u32; MIN_RUN + 5];
    head_run.extend_from_slice(&[1, 2, 3]);
    roundtrip_both(&head_run);

    let mut tail_run = vec![1u32, 2, 3];
    tail_run.extend(std::iter::repeat(9u32).take(MIN_RUN + 5));
    roundtrip_both(&tail_run);

    // Entire stream is one run.
    roundtrip_both(&vec![3u32; MIN_RUN * 4]);
}

#[test]
fn back_to_back_runs_of_different_symbols() {
    let mut symbols = Vec::new();
    for s in 0..6u32 {
        symbols.extend(std::iter::repeat(s).take(MIN_RUN + s as usize));
    }
    roundtrip_both(&symbols);
}

#[test]
fn inputs_containing_run_marker_disable_rle() {
    // RUN_MARKER (u32::MAX) appearing as *data* must force the literal
    // (non-RLE) encoding and still round-trip exactly.
    let symbols = vec![RUN_MARKER, 1, 2, RUN_MARKER, RUN_MARKER, 3];
    roundtrip_both(&symbols);

    // Even a long run of the marker itself cannot use RLE.
    let mut marker_run = vec![5u32; 10];
    marker_run.extend(std::iter::repeat(RUN_MARKER).take(MIN_RUN * 2));
    marker_run.extend_from_slice(&[5; 10]);
    roundtrip_both(&marker_run);
}

#[test]
fn codes_longer_than_peek_table_width() {
    // A steeply skewed distribution over many symbols forces code lengths
    // past the PEEK-bit prefix table, exercising the slow canonical path
    // inside the fast word-batched decoder.
    let mut symbols = Vec::new();
    for s in 0..200u32 {
        // Geometric-ish frequencies: symbol s appears ~2^(s/8)-fold less.
        let copies = (1usize << (12 - (s as usize / 16).min(12))).max(1);
        symbols.extend(std::iter::repeat(s).take(copies));
    }
    // Deterministic shuffle so long-code symbols interleave with short.
    let mut rng = StdRng::seed_from_u64(99);
    for i in (1..symbols.len()).rev() {
        let j = rng.gen_range(0..(i + 1) as u64) as usize;
        symbols.swap(i, j);
    }
    let stream = encode(&symbols);
    // Sanity: the code table really does exceed the PEEK width.  Header is
    // n:u64, rle:u8, runs:u32 (+varints), transformed:u64, n_codes:u32;
    // the shuffle leaves no collapsible runs, so offsets are fixed.
    let n_runs = u32::from_le_bytes(stream[9..13].try_into().unwrap());
    assert_eq!(n_runs, 0, "shuffle should leave no RLE runs");
    let n_codes = u32::from_le_bytes(stream[21..25].try_into().unwrap());
    assert!(n_codes >= 200, "expected a wide alphabet, got {n_codes}");
    let max_len = (0..n_codes as usize)
        .map(|i| stream[25 + 5 * i + 4])
        .max()
        .unwrap();
    assert!(
        u32::from(max_len) > PEEK,
        "distribution failed to force a code past {PEEK} bits (max {max_len})"
    );
    roundtrip_both(&symbols);
}

#[test]
fn single_symbol_streams() {
    // One distinct symbol: the canonical code is a single 1-bit code.
    roundtrip_both(&[42u32]);
    roundtrip_both(&vec![42u32; 5]);
    roundtrip_both(&vec![42u32; MIN_RUN]); // also collapses to one run
    roundtrip_both(&[RUN_MARKER]); // the marker alone, as data
}

#[test]
fn empty_stream() {
    roundtrip_both(&[]);
}

#[test]
fn large_alphabet_spills_dense_tables() {
    // Symbols above the dense-LUT range exercise the HashMap fallback on
    // encode and the canonical arrays (no prefix table hit) on decode.
    let mut rng = StdRng::seed_from_u64(7);
    let mut symbols: Vec<u32> = (0..4000)
        .map(|_| rng.gen_range(0..(1u64 << 22)) as u32)
        .collect();
    symbols.extend(std::iter::repeat(1u32 << 21).take(MIN_RUN * 2));
    roundtrip_both(&symbols);
}

#[test]
fn complete_64bit_kraft_table_does_not_panic() {
    // A crafted canonical table with lengths 1..=64 plus a second 64-bit
    // code: the Kraft sum is exactly 2^64, so the final canonical code is
    // the all-ones 64-bit value and the post-assignment increment wraps.
    // Accepting or rejecting the stream are both fine; panicking is not.
    let mut s = Vec::new();
    s.extend_from_slice(&1u64.to_le_bytes()); // n_original
    s.push(0); // rle flag
    s.extend_from_slice(&0u32.to_le_bytes()); // n_runs
    s.extend_from_slice(&1u64.to_le_bytes()); // n_symbols
    s.extend_from_slice(&65u32.to_le_bytes()); // n_distinct
    for i in 0u32..64 {
        s.extend_from_slice(&i.to_le_bytes());
        s.push((i + 1) as u8); // lengths 1..=64
    }
    s.extend_from_slice(&64u32.to_le_bytes());
    s.push(64); // second length-64 code -> Kraft sum exactly 2^64
    s.extend_from_slice(&1u64.to_le_bytes()); // payload_len
    s.push(0x00); // payload: one 0 bit decodes symbol 0
    let _ = decode(&s);
}

#[test]
fn forged_header_lengths_are_rejected_not_trusted() {
    // Build one valid stream, then corrupt each header length field to a
    // value the stream cannot hold; every variant must return an error
    // (never panic, never allocate per the forged count).
    let valid = encode(&[1u32, 2, 3, 2, 1, 2, 3]);

    // n_distinct forged to u32::MAX: the 5-bytes-per-entry bound trips.
    let mut forged = valid.clone();
    forged[21..25].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(
        decode(&forged).is_err(),
        "forged n_distinct must be rejected"
    );

    // n_symbols forged far past the declared output length.
    let mut forged = valid.clone();
    forged[13..21].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(
        decode(&forged).is_err(),
        "forged n_symbols must be rejected"
    );

    // payload_len forged past the end of the stream.  Its offset: header is
    // n:u64 rle:u8 n_runs:u32 (no runs) n_symbols:u64 n_distinct:u32
    // + 5 bytes per table entry, then payload_len:u64.
    let mut forged = valid.clone();
    let n_distinct = u32::from_le_bytes(valid[21..25].try_into().unwrap()) as usize;
    let off = 25 + 5 * n_distinct;
    forged[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
    assert!(
        decode(&forged).is_err(),
        "forged payload_len must be rejected"
    );

    // n_runs forged huge with the rle flag off.
    let mut forged = valid;
    forged[9..13].copy_from_slice(&u32::MAX.to_le_bytes());
    assert!(decode(&forged).is_err(), "forged n_runs must be rejected");
}

#[test]
fn truncated_streams_error_cleanly() {
    let valid = encode(&[9u32, 9, 9, 9, 8, 7, 6, 5]);
    for cut in 0..valid.len() {
        // Every prefix must produce Err, not a panic or a bogus Ok.
        assert!(
            decode(&valid[..cut]).is_err(),
            "truncation at {cut} of {} decoded successfully",
            valid.len()
        );
    }
}
