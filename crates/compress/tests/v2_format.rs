//! Cross-version (v1 ↔ v2) stream-format matrix.
//!
//! * v1 streams from the pinned `v1_format()` encoders must decode
//!   **bit-identically** through the optimized decoders and the frozen
//!   [`errflow_compress::reference`] oracle — the optimization work on the
//!   hot paths must never change a v1 result.
//! * v2 streams must round-trip within the requested bound under every
//!   bound mode the backend supports.
//! * A v2 header whose declared sub-stream / table lengths don't sum to
//!   the actual payload must be rejected with a typed
//!   [`CompressError::CorruptStream`], never silently truncated.

use errflow_compress::{
    reference, scratch, CompressError, Compressor, ErrorBound, SzCompressor, ZfpCompressor,
};
use errflow_tensor::rng::StdRng;

/// Smooth field with mild noise — representative of the HPC data the
/// paper's codecs target, with enough variation to exercise outliers.
fn field(n: usize) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(0x5eed_f0e1);
    (0..n)
        .map(|i| {
            let x = i as f32;
            (x * 0.003).sin() * 3.0 + 0.2 * (x * 0.041).cos() + rng.gen_range(-0.002f32..0.002)
        })
        .collect()
}

#[test]
fn v1_streams_decode_bit_identically_to_the_oracle() {
    let data = field(4097);
    let mut sc = scratch::acquire();
    let v1_backends: Vec<(&str, Box<dyn Compressor>)> = vec![
        ("sz", Box::new(SzCompressor::v1_format())),
        ("zfp", Box::new(ZfpCompressor::v1_format())),
    ];
    for (name, v1) in &v1_backends {
        let bound = ErrorBound::rel_linf(1e-4);
        let stream = v1.compress(&data, &bound).unwrap();
        let oracle = reference::decompress(name, &stream).unwrap();
        let fast = v1.decompress(&stream).unwrap();
        assert_eq!(oracle.len(), fast.len(), "{name}: length mismatch");
        for (i, (a, b)) in oracle.iter().zip(&fast).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{name}: v1 decode diverges from the oracle at index {i}"
            );
        }
        let mut into = vec![0.0f32; data.len()];
        v1.decompress_into(&stream, &mut into, &mut sc).unwrap();
        assert!(oracle
            .iter()
            .zip(&into)
            .all(|(a, b)| a.to_bits() == b.to_bits()));
    }
}

#[test]
fn v2_round_trips_under_every_supported_bound_mode() {
    let data = field(10_000);
    let mut sc = scratch::acquire();
    let bounds = [
        ErrorBound::abs_linf(1e-3),
        ErrorBound::rel_linf(1e-4),
        ErrorBound::abs_l2(1e-3),
    ];
    let sz = SzCompressor::new();
    let zfp = ZfpCompressor::new();
    for bound in &bounds {
        for c in [&sz as &dyn Compressor, &zfp] {
            if !c.supports(bound) {
                continue;
            }
            let stream = c.compress(&data, bound).unwrap();
            let rec = c.decompress(&stream).unwrap();
            assert!(
                bound.verify(&data, &rec),
                "{} v2 violates {bound:?}",
                c.name()
            );
            let mut into = vec![0.0f32; data.len()];
            c.decompress_into(&stream, &mut into, &mut sc).unwrap();
            assert!(rec
                .iter()
                .zip(&into)
                .all(|(a, b)| a.to_bits() == b.to_bits()));
        }
    }
}

/// ZFP's v2 container re-encodes the *same* per-block stream, merely split
/// at block boundaries — so v1 and v2 must reconstruct bit-identical
/// values, not merely bound-respecting ones.
#[test]
fn zfp_v2_reconstruction_matches_v1_exactly() {
    let data = field(8191);
    let bound = ErrorBound::rel_linf(1e-5);
    let v1 = ZfpCompressor::v1_format()
        .decompress(&ZfpCompressor::v1_format().compress(&data, &bound).unwrap())
        .unwrap();
    let v2 = ZfpCompressor::new()
        .decompress(&ZfpCompressor::new().compress(&data, &bound).unwrap())
        .unwrap();
    assert!(v1.iter().zip(&v2).all(|(a, b)| a.to_bits() == b.to_bits()));
}

/// Flip the first declared sub-stream length in a v2 ZFP header so the
/// lengths no longer sum to the payload size.
#[test]
fn zfp_forged_substream_lengths_are_a_typed_corrupt_stream() {
    let data = field(2048);
    let zfp = ZfpCompressor::new();
    let mut stream = zfp.compress(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
    // Layout: preamble (10) + n (8) + per-stream u64 lengths.
    let len0 = u64::from_le_bytes(stream[18..26].try_into().unwrap());
    stream[18..26].copy_from_slice(&(len0 + 1).to_le_bytes());
    let mut out = vec![0.0f32; data.len()];
    let mut sc = scratch::acquire();
    let err = zfp.decompress_into(&stream, &mut out, &mut sc).unwrap_err();
    match err {
        CompressError::CorruptStream(msg) => {
            assert!(
                msg.contains("sub-stream lengths"),
                "unexpected message: {msg}"
            )
        }
        other => panic!("expected CorruptStream, got {other:?}"),
    }
    assert!(zfp.decompress(&stream).is_err());
}

/// Inflate a declared per-segment outlier count in a v2 SZ header so the
/// outlier tables no longer match the trailing payload bytes.
#[test]
fn sz_forged_outlier_counts_are_a_typed_corrupt_stream() {
    let data = field(2048);
    let sz = SzCompressor::new();
    let mut stream = sz.compress(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
    // Layout: preamble (10) + n (8) + eb (8) + per-stream u32 counts.
    let c0 = u32::from_le_bytes(stream[26..30].try_into().unwrap());
    stream[26..30].copy_from_slice(&(c0 + 1).to_le_bytes());
    let mut out = vec![0.0f32; data.len()];
    let mut sc = scratch::acquire();
    let err = sz.decompress_into(&stream, &mut out, &mut sc).unwrap_err();
    match err {
        CompressError::CorruptStream(msg) => {
            assert!(msg.contains("outlier table"), "unexpected message: {msg}")
        }
        other => panic!("expected CorruptStream, got {other:?}"),
    }
    assert!(sz.decompress(&stream).is_err());
}

/// Truncating the payload (without touching the header) must also be
/// rejected by the strict length-sum check, for both backends.
#[test]
fn v2_truncated_payloads_are_rejected() {
    let data = field(4096);
    let bound = ErrorBound::abs_linf(1e-3);
    for c in [
        &SzCompressor::new() as &dyn Compressor,
        &ZfpCompressor::new(),
    ] {
        let stream = c.compress(&data, &bound).unwrap();
        let cut = &stream[..stream.len() - 3];
        assert!(
            matches!(c.decompress(cut), Err(CompressError::CorruptStream(_))),
            "{}: truncated v2 stream must be CorruptStream",
            c.name()
        );
    }
}
