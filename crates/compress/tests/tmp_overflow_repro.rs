// Temporary repro: crafted canonical table with a complete 64-bit code set.
use errflow_compress::huffman;

#[test]
fn complete_64bit_table_does_not_panic() {
    let mut s = Vec::new();
    s.extend_from_slice(&1u64.to_le_bytes()); // n_original
    s.push(0); // rle flag
    s.extend_from_slice(&0u32.to_le_bytes()); // n_runs
    s.extend_from_slice(&1u64.to_le_bytes()); // n_symbols
    s.extend_from_slice(&65u32.to_le_bytes()); // n_distinct
    for i in 0u32..64 {
        s.extend_from_slice(&i.to_le_bytes());
        s.push((i + 1) as u8); // lengths 1..=64
    }
    s.extend_from_slice(&64u32.to_le_bytes());
    s.push(64); // second length-64 code -> Kraft sum exactly 2^64
    s.extend_from_slice(&1u64.to_le_bytes()); // payload_len
    s.push(0x00); // payload: one 0 bit decodes symbol 0
    let r = huffman::decode(&s);
    // Accept or reject is fine; panicking is not.
    let _ = r;
}
