//! Property-style round-trip coverage: random fields × every backend ×
//! every bound mode must reconstruct within the certified bound.
//!
//! Fields are drawn from the in-workspace PRNG (`errflow_tensor::rng`) at
//! several roughness levels — smooth correlated walks (the compressors'
//! home turf), noisy fields, constant stretches (RLE-heavy), and fields
//! salted with outlier spikes (escape-path heavy) — so the fast decode
//! paths see every symbol class the coders emit.

use errflow_compress::{
    Compressor, ErrorBound, MgardCompressor, Sz2dCompressor, SzCompressor, ZfpCompressor,
};
use errflow_tensor::rng::StdRng;

/// One random test field with a descriptive label for failure messages.
fn fields(seed: u64, n: usize) -> Vec<(&'static str, Vec<f32>)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();

    // Smooth correlated walk.
    let mut v = 0.0f32;
    out.push((
        "smooth-walk",
        (0..n)
            .map(|_| {
                v += rng.gen_range(-0.01f32..0.01);
                v
            })
            .collect(),
    ));

    // White noise (worst case for prediction; exercises wide alphabets).
    out.push((
        "white-noise",
        (0..n).map(|_| rng.gen_range(-1.0f32..1.0)).collect(),
    ));

    // Mostly-constant field with occasional level shifts (RLE-heavy).
    let mut level = 1.5f32;
    out.push((
        "piecewise-constant",
        (0..n)
            .map(|i| {
                if i % 257 == 0 {
                    level = rng.gen_range(-2.0f32..2.0);
                }
                level
            })
            .collect(),
    ));

    // Smooth field salted with large spikes (outlier escape path).
    let mut w = 0.0f32;
    out.push((
        "spiky",
        (0..n)
            .map(|i| {
                w += rng.gen_range(-0.005f32..0.005);
                if i % 401 == 0 {
                    w + rng.gen_range(-100.0f32..100.0)
                } else {
                    w
                }
            })
            .collect(),
    ));

    out
}

fn bounds() -> Vec<ErrorBound> {
    vec![
        ErrorBound::abs_linf(1e-3),
        ErrorBound::rel_linf(1e-4),
        ErrorBound::abs_l2(1e-2),
    ]
}

#[test]
fn random_fields_roundtrip_within_bound_all_backends() {
    let backends: Vec<Box<dyn Compressor>> = vec![
        Box::new(SzCompressor::default()),
        Box::new(ZfpCompressor::default()),
        Box::new(MgardCompressor::default()),
    ];
    for (label, data) in fields(42, 10_000) {
        for bound in bounds() {
            for be in &backends {
                if !be.supports(&bound) {
                    continue; // ZFP has no L2 mode
                }
                let stream = be
                    .compress(&data, &bound)
                    .unwrap_or_else(|e| panic!("{} compress {label}: {e}", be.name()));
                let recon = be
                    .decompress(&stream)
                    .unwrap_or_else(|e| panic!("{} decompress {label}: {e}", be.name()));
                assert_eq!(recon.len(), data.len());
                assert!(
                    bound.verify(&data, &recon),
                    "{} violated {bound:?} on {label}",
                    be.name()
                );
            }
        }
    }
}

#[test]
fn random_grids_roundtrip_within_bound_sz2d() {
    let sz2d = Sz2dCompressor::new();
    let (nx, ny) = (80, 125);
    for (label, data) in fields(43, nx * ny) {
        for bound in bounds() {
            let stream = sz2d
                .compress(&data, nx, ny, &bound)
                .unwrap_or_else(|e| panic!("sz2d compress {label}: {e}"));
            let (recon, rx, ry) = sz2d
                .decompress(&stream)
                .unwrap_or_else(|e| panic!("sz2d decompress {label}: {e}"));
            assert_eq!((rx, ry), (nx, ny));
            assert!(
                bound.verify(&data, &recon),
                "sz2d violated {bound:?} on {label}"
            );
        }
    }
}

#[test]
fn decompress_into_agrees_with_decompress_all_backends() {
    // The zero-copy decode path must be value-identical to the Vec path.
    let backends: Vec<Box<dyn Compressor>> = vec![
        Box::new(SzCompressor::default()),
        Box::new(ZfpCompressor::default()),
        Box::new(MgardCompressor::default()),
    ];
    let bound = ErrorBound::abs_linf(1e-4);
    for (label, data) in fields(44, 8_192) {
        for be in &backends {
            let stream = be.compress(&data, &bound).unwrap();
            let via_vec = be.decompress(&stream).unwrap();
            let mut via_into = vec![0.0f32; data.len()];
            let mut scratch = errflow_compress::CodecScratch::new();
            be.decompress_into(&stream, &mut via_into, &mut scratch)
                .unwrap_or_else(|e| panic!("{} decompress_into {label}: {e}", be.name()));
            assert_eq!(via_vec, via_into, "{} differs on {label}", be.name());
        }
    }
}
