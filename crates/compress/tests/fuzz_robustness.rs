//! Robustness: decompressing arbitrary bytes must return an error (or a
//! harmless value) — never panic, never allocate unboundedly.  These are
//! deterministic pseudo-fuzz sweeps over random buffers and mutated valid
//! streams.

use errflow_compress::chunked::ChunkedCompressor;
use errflow_compress::{
    Compressor, ErrorBound, MgardCompressor, Sz2dCompressor, SzCompressor, ZfpCompressor,
};
use errflow_tensor::rng::StdRng;

fn backends() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(SzCompressor::default()),
        Box::new(ZfpCompressor::default()),
        Box::new(MgardCompressor::default()),
        Box::new(ChunkedCompressor::new(SzCompressor::default())),
    ]
}

#[test]
fn random_bytes_never_panic() {
    let mut rng = StdRng::seed_from_u64(0xf22);
    for be in backends() {
        for len in [0usize, 1, 7, 8, 16, 24, 64, 256, 4096] {
            for _ in 0..20 {
                let buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
                // Any Result is fine; panics/OOM are the failure mode.
                let _ = be.decompress(&buf);
            }
        }
    }
}

#[test]
fn huge_declared_counts_do_not_allocate() {
    // A header declaring 2^60 values with a 16-byte body must error fast.
    for be in backends() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(1u64 << 60).to_le_bytes());
        buf.extend_from_slice(&[0u8; 16]);
        assert!(be.decompress(&buf).is_err(), "{}", be.name());
    }
}

#[test]
fn bit_flips_in_valid_streams_never_panic() {
    let data: Vec<f32> = (0..2048).map(|i| ((i as f32) * 0.01).sin() * 2.0).collect();
    let bound = ErrorBound::abs_linf(1e-3);
    let mut rng = StdRng::seed_from_u64(99);
    for be in backends() {
        let stream = be.compress(&data, &bound).unwrap();
        for _ in 0..200 {
            let mut mutated = stream.clone();
            let idx = rng.gen_range(0..mutated.len());
            mutated[idx] ^= 1 << rng.gen_range(0..8u8);
            // Either an error or a (wrong) reconstruction — never a panic.
            let _ = be.decompress(&mutated);
        }
    }
}

#[test]
fn truncations_of_valid_streams_never_panic() {
    let data: Vec<f32> = (0..1024).map(|i| (i as f32).cos()).collect();
    let bound = ErrorBound::abs_linf(1e-4);
    for be in backends() {
        let stream = be.compress(&data, &bound).unwrap();
        for cut in 0..stream.len().min(200) {
            let _ = be.decompress(&stream[..cut]);
        }
        // Also a coarse sweep across the whole stream.
        let step = (stream.len() / 50).max(1);
        for cut in (0..stream.len()).step_by(step) {
            let _ = be.decompress(&stream[..cut]);
        }
    }
}

#[test]
fn sz2d_random_bytes_never_panic() {
    let sz2d = Sz2dCompressor::new();
    let mut rng = StdRng::seed_from_u64(7);
    for len in [0usize, 10, 24, 100, 1000] {
        for _ in 0..20 {
            let buf: Vec<u8> = (0..len).map(|_| rng.gen()).collect();
            let _ = sz2d.decompress(&buf);
        }
    }
    // Overflow-bait dimensions.
    let mut buf = Vec::new();
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    buf.extend_from_slice(&u64::MAX.to_le_bytes());
    buf.extend_from_slice(&1e-3f64.to_le_bytes());
    buf.extend_from_slice(&[0u8; 32]);
    assert!(sz2d.decompress(&buf).is_err());
}
