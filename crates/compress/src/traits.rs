//! The compressor interface shared by all backends.

use crate::error_bound::ErrorBound;
use crate::metrics::CompressionStats;
use std::fmt;
use std::time::Instant;

/// Errors raised by compression backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The backend does not support the requested bound mode (e.g. ZFP with
    /// an L2 tolerance — the restriction the paper notes for Figs. 8/12/14).
    UnsupportedBound {
        /// Backend name.
        backend: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The tolerance was non-positive or non-finite.
    InvalidTolerance(String),
    /// The compressed byte stream was malformed.
    CorruptStream(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::UnsupportedBound { backend, reason } => {
                write!(f, "{backend}: unsupported error bound: {reason}")
            }
            CompressError::InvalidTolerance(msg) => write!(f, "invalid tolerance: {msg}"),
            CompressError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// One independently-decodable span of a compressed stream, produced by
/// [`Compressor::decode_units`]: `stream` decodes to the value range
/// `[offset, offset + len)` of the full payload.
///
/// Units let a caller holding many streams flatten *all* their decode work
/// into one parallel fan-out (the serving batcher's payload × chunk joint
/// scheduling) instead of decoding stream-by-stream.
#[derive(Clone, Copy)]
pub struct DecodeUnit<'a> {
    /// The unit's bytes (a sub-slice of the original stream).
    pub stream: &'a [u8],
    /// Start of this unit's values within the decoded payload.
    pub offset: usize,
    /// Number of values this unit decodes to.
    pub len: usize,
    /// Backend-private discriminator interpreted by
    /// [`Compressor::decode_unit_into`] (e.g. chunk vs. whole-container).
    /// `0` always means "decode via the backend's `decompress_into`".
    pub tag: u8,
}

/// An error-bounded lossy compressor over `f32` buffers.
///
/// Implementations guarantee: for any input and any supported
/// [`ErrorBound`], `decompress(compress(x, b))` reconstructs `x̃` with
/// `b.verify(x, x̃) == true`.
pub trait Compressor: Send + Sync {
    /// Short backend name (`"sz"`, `"zfp"`, `"mgard"`).
    fn name(&self) -> &'static str;

    /// `true` when the backend can honour the given bound mode.
    fn supports(&self, bound: &ErrorBound) -> bool;

    /// Compresses `data` under `bound`.
    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError>;

    /// Decompresses a stream produced by [`Compressor::compress`].
    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError>;

    /// Decompresses into a caller-provided buffer, reusing `scratch` for
    /// all transient state.  Errors if the stream does not decode to
    /// exactly `out.len()` values.
    ///
    /// The optimized backends override this with allocation-free decode
    /// paths; the default falls back to [`Compressor::decompress`] plus a
    /// copy, so custom backends stay correct without extra work.
    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        scratch: &mut crate::scratch::CodecScratch,
    ) -> Result<(), CompressError> {
        let _ = scratch;
        let v = self.decompress(stream)?;
        if v.len() != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream decoded to {} values, expected {}",
                v.len(),
                out.len()
            )));
        }
        out.copy_from_slice(&v);
        Ok(())
    }

    /// Splits `stream` into independently-decodable [`DecodeUnit`]s.
    ///
    /// Contract: the returned units are ordered, contiguous, and tile
    /// exactly `[0, expected_len)`; each decodes via
    /// [`Compressor::decode_unit_into`].  Errors if the stream does not
    /// declare exactly `expected_len` values.  The default treats the whole
    /// stream as one unit, so monolithic backends parallelise at payload
    /// granularity; chunked containers override this to expose per-chunk
    /// parallelism.
    fn decode_units<'a>(
        &self,
        stream: &'a [u8],
        expected_len: usize,
    ) -> Result<Vec<DecodeUnit<'a>>, CompressError> {
        Ok(vec![DecodeUnit {
            stream,
            offset: 0,
            len: expected_len,
            tag: 0,
        }])
    }

    /// Decodes one unit from [`Compressor::decode_units`] into `out`
    /// (which must be exactly `unit.len` values).
    fn decode_unit_into(
        &self,
        unit: &DecodeUnit<'_>,
        out: &mut [f32],
        scratch: &mut crate::scratch::CodecScratch,
    ) -> Result<(), CompressError> {
        debug_assert_eq!(unit.len, out.len(), "unit/output length mismatch");
        self.decompress_into(unit.stream, out, scratch)
    }

    /// Convenience: compress + decompress + collect timing/ratio stats.
    fn roundtrip(
        &self,
        data: &[f32],
        bound: &ErrorBound,
    ) -> Result<(Vec<f32>, CompressionStats), CompressError> {
        let t0 = Instant::now();
        let stream = self.compress(data, bound)?;
        let compress_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let recon = self.decompress(&stream)?;
        let decompress_secs = t1.elapsed().as_secs_f64();
        Ok((
            recon,
            CompressionStats {
                original_bytes: data.len() * 4,
                compressed_bytes: stream.len(),
                compress_secs,
                decompress_secs,
            },
        ))
    }
}

/// Caps a header-declared element count for preallocation: untrusted
/// streams can declare absurd counts, so reserve at most what the stream
/// could plausibly encode (one element per remaining *bit*), bounded by a
/// hard 16 Mi ceiling.  Vectors still grow on demand; this only guards the
/// up-front allocation.
pub fn safe_capacity(declared: usize, remaining_bytes: usize) -> usize {
    declared.min(remaining_bytes.saturating_mul(8)).min(1 << 24)
}

/// Checked header readers: every untrusted header field in a codec decoder
/// flows through one of these before it is used for indexing or allocation
/// (enforced by the `unchecked-header-cast` audit rule).  Each reader
/// advances `pos` past the field and fails with [`CompressError`] on
/// truncation or a count that does not fit `usize`.
mod header {
    use super::CompressError;

    fn truncated(what: &'static str) -> CompressError {
        CompressError::CorruptStream(format!("truncated header: {what}"))
    }

    fn take<'a, const N: usize>(
        stream: &'a [u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<[u8; N], CompressError> {
        let bytes = stream
            .get(*pos..)
            .and_then(|rest| rest.get(..N))
            .ok_or_else(|| truncated(what))?;
        *pos += N;
        let mut arr = [0u8; N];
        arr.copy_from_slice(bytes);
        Ok(arr)
    }

    /// Reads a little-endian `u64` count/length field as a checked `usize`.
    pub fn read_len_u64(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<usize, CompressError> {
        let v = u64::from_le_bytes(take::<8>(stream, pos, what)?);
        usize::try_from(v).map_err(|_| {
            CompressError::CorruptStream(format!("header field {what} ({v}) overflows usize"))
        })
    }

    /// Reads a little-endian `u64` *value* field (ids, timings).  Unlike
    /// [`read_len_u64`] the value is not a length, so it is returned
    /// full-range instead of being checked against `usize` — a model id
    /// above `u32::MAX` must still decode on 32-bit targets.
    pub fn read_u64(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<u64, CompressError> {
        Ok(u64::from_le_bytes(take::<8>(stream, pos, what)?))
    }

    /// Reads a little-endian `u32` count/length field as a `usize`.
    pub fn read_len_u32(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<usize, CompressError> {
        Ok(u32::from_le_bytes(take::<4>(stream, pos, what)?) as usize)
    }

    /// Reads a little-endian `f64` header field (tolerances, scales).
    pub fn read_f64(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<f64, CompressError> {
        Ok(f64::from_le_bytes(take::<8>(stream, pos, what)?))
    }

    /// Reads a little-endian `f32` value (outlier / coarse payloads).
    pub fn read_f32(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<f32, CompressError> {
        Ok(f32::from_le_bytes(take::<4>(stream, pos, what)?))
    }

    /// Reads one raw byte (flags).
    pub fn read_u8(
        stream: &[u8],
        pos: &mut usize,
        what: &'static str,
    ) -> Result<u8, CompressError> {
        let b = *stream.get(*pos).ok_or_else(|| truncated(what))?;
        *pos += 1;
        Ok(b)
    }
}

pub use header::{read_f32, read_f64, read_len_u32, read_len_u64, read_u64, read_u8};

/// Validates a tolerance (shared by all backends).
pub fn check_tolerance(tol: f64) -> Result<(), CompressError> {
    if !tol.is_finite() || tol <= 0.0 {
        return Err(CompressError::InvalidTolerance(format!(
            "tolerance must be positive and finite, got {tol}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_validation() {
        assert!(check_tolerance(1e-3).is_ok());
        assert!(check_tolerance(0.0).is_err());
        assert!(check_tolerance(-1.0).is_err());
        assert!(check_tolerance(f64::NAN).is_err());
        assert!(check_tolerance(f64::INFINITY).is_err());
    }

    #[test]
    fn safe_capacity_caps() {
        assert_eq!(safe_capacity(10, 1000), 10);
        assert_eq!(safe_capacity(usize::MAX, 2), 16);
        assert_eq!(safe_capacity(usize::MAX, usize::MAX), 1 << 24);
    }

    #[test]
    fn header_readers_advance_and_check_bounds() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&7u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&1.5f64.to_le_bytes());
        buf.push(0xAB);
        let mut pos = 0;
        assert_eq!(read_len_u64(&buf, &mut pos, "n").unwrap(), 7);
        assert_eq!(read_len_u32(&buf, &mut pos, "m").unwrap(), 3);
        assert_eq!(read_f64(&buf, &mut pos, "tol").unwrap(), 1.5);
        assert_eq!(read_u8(&buf, &mut pos, "flag").unwrap(), 0xAB);
        assert_eq!(pos, buf.len());
        assert!(read_u8(&buf, &mut pos, "flag").is_err());
        assert!(read_len_u64(&buf, &mut pos, "n").is_err());
    }

    #[test]
    fn header_readers_tolerate_huge_positions() {
        let buf = [0u8; 16];
        // A position beyond the stream must error, not wrap or panic.
        let mut pos = usize::MAX - 3;
        assert!(read_len_u32(&buf, &mut pos, "n").is_err());
        assert!(read_f32(&buf, &mut pos, "v").is_err());
    }

    #[test]
    fn error_display() {
        let e = CompressError::UnsupportedBound {
            backend: "zfp",
            reason: "L2 tolerance".into(),
        };
        assert!(e.to_string().contains("zfp"));
        assert!(CompressError::InvalidTolerance("x".into())
            .to_string()
            .contains("invalid"));
        assert!(CompressError::CorruptStream("y".into())
            .to_string()
            .contains("corrupt"));
    }
}
