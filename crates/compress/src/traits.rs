//! The compressor interface shared by all backends.

use crate::error_bound::ErrorBound;
use crate::metrics::CompressionStats;
use std::fmt;
use std::time::Instant;

/// Errors raised by compression backends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompressError {
    /// The backend does not support the requested bound mode (e.g. ZFP with
    /// an L2 tolerance — the restriction the paper notes for Figs. 8/12/14).
    UnsupportedBound {
        /// Backend name.
        backend: &'static str,
        /// Human-readable reason.
        reason: String,
    },
    /// The tolerance was non-positive or non-finite.
    InvalidTolerance(String),
    /// The compressed byte stream was malformed.
    CorruptStream(String),
}

impl fmt::Display for CompressError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompressError::UnsupportedBound { backend, reason } => {
                write!(f, "{backend}: unsupported error bound: {reason}")
            }
            CompressError::InvalidTolerance(msg) => write!(f, "invalid tolerance: {msg}"),
            CompressError::CorruptStream(msg) => write!(f, "corrupt compressed stream: {msg}"),
        }
    }
}

impl std::error::Error for CompressError {}

/// An error-bounded lossy compressor over `f32` buffers.
///
/// Implementations guarantee: for any input and any supported
/// [`ErrorBound`], `decompress(compress(x, b))` reconstructs `x̃` with
/// `b.verify(x, x̃) == true`.
pub trait Compressor: Send + Sync {
    /// Short backend name (`"sz"`, `"zfp"`, `"mgard"`).
    fn name(&self) -> &'static str;

    /// `true` when the backend can honour the given bound mode.
    fn supports(&self, bound: &ErrorBound) -> bool;

    /// Compresses `data` under `bound`.
    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError>;

    /// Decompresses a stream produced by [`Compressor::compress`].
    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError>;

    /// Decompresses into a caller-provided buffer, reusing `scratch` for
    /// all transient state.  Errors if the stream does not decode to
    /// exactly `out.len()` values.
    ///
    /// The optimized backends override this with allocation-free decode
    /// paths; the default falls back to [`Compressor::decompress`] plus a
    /// copy, so custom backends stay correct without extra work.
    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        scratch: &mut crate::scratch::CodecScratch,
    ) -> Result<(), CompressError> {
        let _ = scratch;
        let v = self.decompress(stream)?;
        if v.len() != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream decoded to {} values, expected {}",
                v.len(),
                out.len()
            )));
        }
        out.copy_from_slice(&v);
        Ok(())
    }

    /// Convenience: compress + decompress + collect timing/ratio stats.
    fn roundtrip(
        &self,
        data: &[f32],
        bound: &ErrorBound,
    ) -> Result<(Vec<f32>, CompressionStats), CompressError> {
        let t0 = Instant::now();
        let stream = self.compress(data, bound)?;
        let compress_secs = t0.elapsed().as_secs_f64();
        let t1 = Instant::now();
        let recon = self.decompress(&stream)?;
        let decompress_secs = t1.elapsed().as_secs_f64();
        Ok((
            recon,
            CompressionStats {
                original_bytes: data.len() * 4,
                compressed_bytes: stream.len(),
                compress_secs,
                decompress_secs,
            },
        ))
    }
}

/// Caps a header-declared element count for preallocation: untrusted
/// streams can declare absurd counts, so reserve at most what the stream
/// could plausibly encode (one element per remaining *bit*), bounded by a
/// hard 16 Mi ceiling.  Vectors still grow on demand; this only guards the
/// up-front allocation.
pub fn safe_capacity(declared: usize, remaining_bytes: usize) -> usize {
    declared.min(remaining_bytes.saturating_mul(8)).min(1 << 24)
}

/// Validates a tolerance (shared by all backends).
pub fn check_tolerance(tol: f64) -> Result<(), CompressError> {
    if !tol.is_finite() || tol <= 0.0 {
        return Err(CompressError::InvalidTolerance(format!(
            "tolerance must be positive and finite, got {tol}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_validation() {
        assert!(check_tolerance(1e-3).is_ok());
        assert!(check_tolerance(0.0).is_err());
        assert!(check_tolerance(-1.0).is_err());
        assert!(check_tolerance(f64::NAN).is_err());
        assert!(check_tolerance(f64::INFINITY).is_err());
    }

    #[test]
    fn safe_capacity_caps() {
        assert_eq!(safe_capacity(10, 1000), 10);
        assert_eq!(safe_capacity(usize::MAX, 2), 16);
        assert_eq!(safe_capacity(usize::MAX, usize::MAX), 1 << 24);
    }

    #[test]
    fn error_display() {
        let e = CompressError::UnsupportedBound {
            backend: "zfp",
            reason: "L2 tolerance".into(),
        };
        assert!(e.to_string().contains("zfp"));
        assert!(CompressError::InvalidTolerance("x".into())
            .to_string()
            .contains("invalid"));
        assert!(CompressError::CorruptStream("y".into())
            .to_string()
            .contains("corrupt"));
    }
}
