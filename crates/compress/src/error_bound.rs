//! Error-bound specifications shared by all compressor backends.
//!
//! Scientific compressors are configured with a *tolerance* and a *mode*.
//! The paper uses value-range-relative tolerances throughout ("all errors
//! discussed in this section are relative errors by default", §IV-B) and
//! reports both L∞- and L2-norm results; [`ErrorBound`] captures both axes.

/// How the tolerance constrains the reconstruction error.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BoundMode {
    /// Pointwise absolute bound: `|x_i − x̃_i| ≤ tol` for every `i`.
    AbsLInf,
    /// Pointwise bound relative to the value range:
    /// `|x_i − x̃_i| ≤ tol · (max x − min x)`.
    RelLInf,
    /// Whole-buffer L2 bound: `‖x − x̃‖₂ ≤ tol`.
    AbsL2,
    /// L2 bound relative to the input's L2 norm: `‖x − x̃‖₂ ≤ tol·‖x‖₂`.
    RelL2,
}

impl BoundMode {
    /// `true` for the L2-norm modes (which ZFP does not support).
    pub fn is_l2(&self) -> bool {
        matches!(self, BoundMode::AbsL2 | BoundMode::RelL2)
    }

    /// `true` for range/norm-relative modes.
    pub fn is_relative(&self) -> bool {
        matches!(self, BoundMode::RelLInf | BoundMode::RelL2)
    }
}

/// A tolerance plus its interpretation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorBound {
    /// The tolerance value (must be positive and finite).
    pub tolerance: f64,
    /// Interpretation of the tolerance.
    pub mode: BoundMode,
}

impl ErrorBound {
    /// Pointwise absolute L∞ bound.
    pub fn abs_linf(tolerance: f64) -> Self {
        ErrorBound {
            tolerance,
            mode: BoundMode::AbsLInf,
        }
    }

    /// Range-relative pointwise bound.
    pub fn rel_linf(tolerance: f64) -> Self {
        ErrorBound {
            tolerance,
            mode: BoundMode::RelLInf,
        }
    }

    /// Absolute L2 bound over the whole buffer.
    pub fn abs_l2(tolerance: f64) -> Self {
        ErrorBound {
            tolerance,
            mode: BoundMode::AbsL2,
        }
    }

    /// Norm-relative L2 bound.
    pub fn rel_l2(tolerance: f64) -> Self {
        ErrorBound {
            tolerance,
            mode: BoundMode::RelL2,
        }
    }

    /// Resolves this bound to a *pointwise absolute* budget for a concrete
    /// input buffer: the per-element tolerance that, if met everywhere,
    /// satisfies the bound.
    ///
    /// * L∞ modes resolve directly (relative scales by the value range).
    /// * L2 modes conservatively divide by `√n`: if every element errs by at
    ///   most `tol/√n`, the L2 error is at most `tol`.
    pub fn pointwise_budget(&self, data: &[f32]) -> f64 {
        if data.is_empty() {
            return self.tolerance;
        }
        match self.mode {
            BoundMode::AbsLInf => self.tolerance,
            BoundMode::RelLInf => {
                let (min, max) = min_max(data);
                self.tolerance * ((max - min) as f64).max(f64::MIN_POSITIVE)
            }
            BoundMode::AbsL2 => self.tolerance / (data.len() as f64).sqrt(),
            BoundMode::RelL2 => {
                let l2: f64 = data
                    .iter()
                    .map(|&x| (x as f64) * (x as f64))
                    .sum::<f64>()
                    .sqrt();
                self.tolerance * l2.max(f64::MIN_POSITIVE) / (data.len() as f64).sqrt()
            }
        }
    }

    /// The absolute value the achieved error must stay below for this bound
    /// on a concrete buffer, in the bound's own norm.
    pub fn absolute_target(&self, data: &[f32]) -> f64 {
        match self.mode {
            BoundMode::AbsLInf | BoundMode::AbsL2 => self.tolerance,
            BoundMode::RelLInf => {
                let (min, max) = min_max(data);
                self.tolerance * ((max - min) as f64).max(f64::MIN_POSITIVE)
            }
            BoundMode::RelL2 => {
                let l2: f64 = data
                    .iter()
                    .map(|&x| (x as f64) * (x as f64))
                    .sum::<f64>()
                    .sqrt();
                self.tolerance * l2.max(f64::MIN_POSITIVE)
            }
        }
    }

    /// Checks that a reconstruction satisfies this bound (used by tests and
    /// by the pipeline's self-verification mode).
    pub fn verify(&self, original: &[f32], reconstructed: &[f32]) -> bool {
        assert_eq!(original.len(), reconstructed.len());
        let target = self.absolute_target(original) * (1.0 + 1e-9) + 1e-30;
        match self.mode {
            BoundMode::AbsLInf | BoundMode::RelLInf => original
                .iter()
                .zip(reconstructed)
                .all(|(&a, &b)| ((a - b).abs() as f64) <= target),
            BoundMode::AbsL2 | BoundMode::RelL2 => {
                let err: f64 = original
                    .iter()
                    .zip(reconstructed)
                    .map(|(&a, &b)| {
                        let d = (a - b) as f64;
                        d * d
                    })
                    .sum::<f64>()
                    .sqrt();
                err <= target
            }
        }
    }
}

fn min_max(data: &[f32]) -> (f32, f32) {
    let mut min = f32::INFINITY;
    let mut max = f32::NEG_INFINITY;
    for &v in data {
        min = min.min(v);
        max = max.max(v);
    }
    (min, max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn abs_linf_budget_is_tolerance() {
        let b = ErrorBound::abs_linf(0.01);
        assert_eq!(b.pointwise_budget(&[1.0, 2.0]), 0.01);
    }

    #[test]
    fn rel_linf_scales_by_range() {
        let b = ErrorBound::rel_linf(0.1);
        assert!((b.pointwise_budget(&[0.0, 4.0]) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn abs_l2_divides_by_sqrt_n() {
        let b = ErrorBound::abs_l2(1.0);
        assert!((b.pointwise_budget(&[0.0; 4]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rel_l2_scales_by_norm() {
        let b = ErrorBound::rel_l2(0.1);
        // ‖x‖₂ = 5, n = 2 → budget = 0.1·5/√2.
        let budget = b.pointwise_budget(&[3.0, 4.0]);
        assert!((budget - 0.5 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn verify_accepts_exact_and_rejects_violations() {
        let b = ErrorBound::abs_linf(0.1);
        assert!(b.verify(&[1.0, 2.0], &[1.05, 1.95]));
        assert!(!b.verify(&[1.0, 2.0], &[1.2, 2.0]));
    }

    #[test]
    fn verify_l2_mode() {
        let b = ErrorBound::abs_l2(0.2);
        // Error vector (0.1, 0.1): L2 ≈ 0.141 ≤ 0.2 but L∞-per-point 0.1.
        assert!(b.verify(&[0.0, 0.0], &[0.1, 0.1]));
        assert!(!b.verify(&[0.0, 0.0], &[0.2, 0.2]));
    }

    #[test]
    fn pointwise_budget_implies_bound() {
        // Meeting the pointwise budget must satisfy the original bound.
        let data = vec![0.5f32, -1.0, 2.0, 0.25];
        for bound in [
            ErrorBound::abs_linf(0.05),
            ErrorBound::rel_linf(0.01),
            ErrorBound::abs_l2(0.1),
            ErrorBound::rel_l2(0.02),
        ] {
            let budget = bound.pointwise_budget(&data) as f32;
            let recon: Vec<f32> = data.iter().map(|&v| v + budget * 0.999).collect();
            assert!(bound.verify(&data, &recon), "{bound:?}");
        }
    }

    #[test]
    fn mode_predicates() {
        assert!(BoundMode::AbsL2.is_l2());
        assert!(!BoundMode::AbsLInf.is_l2());
        assert!(BoundMode::RelL2.is_relative());
        assert!(!BoundMode::AbsL2.is_relative());
    }

    #[test]
    fn empty_data_budget() {
        let b = ErrorBound::rel_linf(0.1);
        assert_eq!(b.pointwise_budget(&[]), 0.1);
    }
}
