//! Two-dimensional SZ-class compression.
//!
//! Scientific fields are multi-dimensional; SZ's defining trick in ≥2
//! dimensions is the **Lorenzo predictor**, which predicts each value from
//! its already-reconstructed west / north / north-west neighbours:
//! `pred(i,j) = x̃(i−1,j) + x̃(i,j−1) − x̃(i−1,j−1)`.  On smooth 2-D data
//! this is exact for locally bilinear patches and beats any 1-D predictor
//! on the same bytes.
//!
//! [`Sz2dCompressor`] carries the grid shape explicitly (the 1-D
//! [`crate::SzCompressor`] keeps the generic [`crate::Compressor`] trait);
//! the bound contract is identical: every reconstructed value lands within
//! the pointwise budget, verified in `f32` with verbatim escape.

use crate::error_bound::ErrorBound;
use crate::huffman;
use crate::traits::{check_tolerance, CompressError};

const MAX_CODE: i64 = 32_767;
const ESCAPE: u32 = 0;

/// SZ-class compressor for 2-D row-major grids.
#[derive(Debug, Clone, Default)]
pub struct Sz2dCompressor;

impl Sz2dCompressor {
    /// Creates the compressor.
    pub fn new() -> Self {
        Sz2dCompressor
    }

    /// 2-D Lorenzo prediction from reconstructed neighbours.
    #[inline]
    fn predict(recon: &[f32], nx: usize, i: usize, j: usize) -> f64 {
        let at = |jj: usize, ii: usize| recon[jj * nx + ii] as f64;
        match (i, j) {
            (0, 0) => 0.0,
            (_, 0) => at(0, i - 1),
            (0, _) => at(j - 1, 0),
            _ => at(j, i - 1) + at(j - 1, i) - at(j - 1, i - 1),
        }
    }

    /// Compresses an `nx × ny` row-major grid under `bound`.
    pub fn compress(
        &self,
        data: &[f32],
        nx: usize,
        ny: usize,
        bound: &ErrorBound,
    ) -> Result<Vec<u8>, CompressError> {
        check_tolerance(bound.tolerance)?;
        if data.len() != nx * ny {
            return Err(CompressError::CorruptStream(format!(
                "buffer length {} does not match {nx}x{ny}",
                data.len()
            )));
        }
        let eb = bound.pointwise_budget(data);
        let mut symbols: Vec<u32> = Vec::with_capacity(data.len());
        let mut outliers: Vec<f32> = Vec::new();
        let mut recon: Vec<f32> = vec![0.0; data.len()];

        for j in 0..ny {
            for i in 0..nx {
                let x = data[j * nx + i];
                let pred = Self::predict(&recon, nx, i, j);
                let code = ((x as f64 - pred) / (2.0 * eb)).round() as i64;
                let mut accepted = false;
                if code.unsigned_abs() <= MAX_CODE as u64 {
                    let r = (pred + 2.0 * eb * code as f64) as f32;
                    if ((x - r).abs() as f64) <= eb && r.is_finite() {
                        symbols.push((code + MAX_CODE + 1) as u32);
                        recon[j * nx + i] = r;
                        accepted = true;
                    }
                }
                if !accepted {
                    symbols.push(ESCAPE);
                    outliers.push(x);
                    recon[j * nx + i] = x;
                }
            }
        }

        let mut out = Vec::new();
        out.extend_from_slice(&(nx as u64).to_le_bytes());
        out.extend_from_slice(&(ny as u64).to_le_bytes());
        out.extend_from_slice(&eb.to_le_bytes());
        out.extend_from_slice(&huffman::encode(&symbols));
        for v in &outliers {
            out.extend_from_slice(&v.to_le_bytes());
        }
        Ok(out)
    }

    /// Decompresses a stream produced by [`Sz2dCompressor::compress`];
    /// returns `(values, nx, ny)`.
    pub fn decompress(&self, stream: &[u8]) -> Result<(Vec<f32>, usize, usize), CompressError> {
        let mut hdr = 0usize;
        let nx = crate::traits::read_len_u64(stream, &mut hdr, "grid width")?;
        let ny = crate::traits::read_len_u64(stream, &mut hdr, "grid height")?;
        let eb = crate::traits::read_f64(stream, &mut hdr, "error bound")?;
        let n = nx
            .checked_mul(ny)
            .ok_or_else(|| CompressError::CorruptStream("grid dimensions overflow".into()))?;
        let (symbols, consumed) = huffman::decode(&stream[24..])?;
        if symbols.len() != n {
            return Err(CompressError::CorruptStream(format!(
                "expected {n} symbols, decoded {}",
                symbols.len()
            )));
        }
        let mut pos = 24 + consumed;
        let mut recon = vec![0.0f32; n];
        for j in 0..ny {
            for i in 0..nx {
                let sym = symbols[j * nx + i]; // length == n checked above
                if sym == ESCAPE {
                    recon[j * nx + i] = crate::traits::read_f32(stream, &mut pos, "outlier table")?;
                } else {
                    let code = sym as i64 - MAX_CODE - 1;
                    let pred = Self::predict(&recon, nx, i, j);
                    recon[j * nx + i] = (pred + 2.0 * eb * code as f64) as f32;
                }
            }
        }
        Ok((recon, nx, ny))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn smooth_grid(nx: usize, ny: usize) -> Vec<f32> {
        let mut out = Vec::with_capacity(nx * ny); // compress-side, trusted
        for j in 0..ny {
            for i in 0..nx {
                let u = i as f32 / nx as f32;
                let v = j as f32 / ny as f32;
                out.push((u * 6.0).sin() * (v * 4.0).cos() + 0.5 * u * v);
            }
        }
        out
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = smooth_grid(64, 48);
        let sz = Sz2dCompressor::new();
        for tol in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::abs_linf(tol);
            let stream = sz.compress(&data, 64, 48, &bound).unwrap();
            let (recon, nx, ny) = sz.decompress(&stream).unwrap();
            assert_eq!((nx, ny), (64, 48));
            assert!(bound.verify(&data, &recon), "tol={tol}");
        }
    }

    #[test]
    fn lorenzo_beats_1d_on_2d_fields() {
        // The defining advantage: a bilinear-ish 2-D field compresses
        // better with the 2-D Lorenzo predictor than with the 1-D pipeline.
        use crate::sz::SzCompressor;
        use crate::traits::Compressor;
        let data = smooth_grid(128, 128);
        let bound = ErrorBound::abs_linf(1e-4);
        let len2d = Sz2dCompressor::new()
            .compress(&data, 128, 128, &bound)
            .unwrap()
            .len();
        let len1d = SzCompressor::new().compress(&data, &bound).unwrap().len();
        assert!(
            len2d < len1d,
            "2D Lorenzo {len2d} bytes should beat 1D {len1d} bytes"
        );
    }

    #[test]
    fn shape_mismatch_rejected() {
        let sz = Sz2dCompressor::new();
        assert!(sz
            .compress(&[0.0; 10], 3, 4, &ErrorBound::abs_linf(1e-3))
            .is_err());
    }

    #[test]
    fn outliers_and_noise_bounded() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut data = smooth_grid(32, 32);
        for v in data.iter_mut().step_by(97) {
            *v = rng.gen_range(-1e20..1e20);
        }
        let sz = Sz2dCompressor::new();
        let bound = ErrorBound::abs_linf(1e-3);
        let stream = sz.compress(&data, 32, 32, &bound).unwrap();
        let (recon, _, _) = sz.decompress(&stream).unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn degenerate_grids() {
        let sz = Sz2dCompressor::new();
        let bound = ErrorBound::abs_linf(1e-3);
        // 1×n and n×1 grids degrade to 1-D Lorenzo.
        for (nx, ny) in [(1usize, 7usize), (7, 1), (1, 1)] {
            let data = smooth_grid(nx, ny);
            let stream = sz.compress(&data, nx, ny, &bound).unwrap();
            let (recon, rx, ry) = sz.decompress(&stream).unwrap();
            assert_eq!((rx, ry), (nx, ny));
            assert!(bound.verify(&data, &recon));
        }
    }

    #[test]
    fn corrupt_stream_rejected() {
        let sz = Sz2dCompressor::new();
        assert!(sz.decompress(&[0; 5]).is_err());
        let data = smooth_grid(16, 16);
        let stream = sz
            .compress(&data, 16, 16, &ErrorBound::abs_linf(1e-3))
            .unwrap();
        assert!(sz.decompress(&stream[..stream.len() - 2]).is_err());
    }

    #[test]
    fn prop_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0xF0);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-6.0f64..-1.0));
            let nx = rng.gen_range(1usize..24);
            let ny = rng.gen_range(1usize..24);
            let data: Vec<f32> = (0..nx * ny)
                .map(|k| ((k as f32) * 0.1).sin() + rng.gen_range(-0.2f32..0.2))
                .collect();
            let sz = Sz2dCompressor::new();
            let bound = ErrorBound::abs_linf(tol);
            let stream = sz.compress(&data, nx, ny, &bound).unwrap();
            let (recon, _, _) = sz.decompress(&stream).unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }
}
