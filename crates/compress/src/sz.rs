//! SZ-class error-bounded compressor.
//!
//! The SZ family (the paper's references \[6\], \[25\]) compresses scientific
//! floating-point data by (1) *predicting* each value from its already-
//! reconstructed neighbours, (2) quantizing the prediction residual into
//! bins of width `2·eb` so every reconstructed value lands within `eb` of
//! the original, and (3) entropy-coding the bin indices, which cluster
//! tightly around zero for smooth fields.  Values the predictor misses
//! (outliers) are stored verbatim.
//!
//! This implementation follows the classic SZ 1-D pipeline with a
//! best-of-two predictor (Lorenzo / linear extrapolation, chosen per value
//! from reconstructed history so the decoder can repeat the choice) and the
//! crate's canonical Huffman coder.  The error-bound contract is *strict*:
//! the quantizer verifies each reconstruction in `f32` and escapes to a
//! verbatim outlier whenever rounding would violate the budget.
//!
//! Both directions run as a single fused pass: the predictor only ever
//! looks two elements back, so compression keeps the reconstructed history
//! in two registers (predict + quantize + verify per element, no
//! reconstruction buffer), and [`Compressor::decompress_into`] streams the
//! inverse straight into the caller's slice through pooled
//! [`CodecScratch`](crate::CodecScratch) state.
//!
//! ## Stream versions
//!
//! The serial predictor chain is the decode bottleneck: each value's
//! prediction needs the previous two *reconstructed* values, so one chain
//! of convert→multiply→add latency gates every element.  The default
//! **v2** container breaks the chain: values are split into
//! [`crate::format::V2_STREAMS`] contiguous segments, the predictor
//! restarts at each segment boundary (costing at most a few poorly
//! predicted values per segment), outlier tables are per-segment, and the
//! quantization symbols are entropy-coded with the multi-stream Huffman
//! block ([`crate::huffman::encode_multi`]).  Decode then runs four
//! independent predictor chains interleaved — roughly a 4× cut in chain
//! latency — on top of the lane-parallel entropy decode.
//! [`SzCompressor::v1_format`] keeps emitting the legacy single-stream
//! layout (bit-identical to the frozen [`crate::reference`] oracle);
//! decoding accepts both.

use crate::error_bound::ErrorBound;
use crate::format::{self, BackendTag, V2_STREAMS};
use crate::huffman;
use crate::scratch::{self, CodecScratch};
use crate::traits::{check_tolerance, CompressError, Compressor};

/// Quantization codes live in `[-MAX_CODE, MAX_CODE]`; residuals outside
/// become outliers.  65k bins matches SZ's default `quantization_intervals`.
const MAX_CODE: i64 = 32_767;

/// Symbol 0 is the outlier escape; code `c` maps to `c + MAX_CODE + 1`.
const ESCAPE: u32 = 0;

/// SZ-class compressor (see module docs).
#[derive(Debug, Clone, Default)]
pub struct SzCompressor {
    /// Emit the legacy v1 single-stream layout instead of v2.
    emit_v1: bool,
}

impl SzCompressor {
    /// Creates the compressor with default settings (v2 streams).
    pub fn new() -> Self {
        SzCompressor::default()
    }

    /// Creates a compressor that emits the legacy v1 single-stream layout
    /// (bit-identical to the frozen reference encoder).  Decoding accepts
    /// both layouts regardless of this setting.
    pub fn v1_format() -> Self {
        SzCompressor { emit_v1: true }
    }

    /// Predicts element `i` from the last two reconstructed values: linear
    /// extrapolation `2·x̃_{i−1} − x̃_{i−2}` when two predecessors exist,
    /// Lorenzo (`x̃_{i−1}`) with one, zero otherwise.
    #[inline]
    fn predict(i: usize, prev: f32, prev2: f32) -> f64 {
        match i {
            0 => 0.0,
            1 => prev as f64,
            _ => 2.0 * prev as f64 - prev2 as f64,
        }
    }

    /// Fused predict + quantize + verify over one predictor segment: the
    /// reconstruction history the predictor needs is just the last two
    /// values, carried in registers, and it restarts at the segment start.
    /// Appends one symbol per value to `symbols` and escaped values to
    /// `outliers`; returns the number of outliers appended.
    fn quantize_segment(
        data: &[f32],
        eb: f64,
        symbols: &mut Vec<u32>,
        outliers: &mut Vec<f32>,
    ) -> usize {
        let outliers_before = outliers.len();
        let mut prev = 0.0f32;
        let mut prev2 = 0.0f32;
        for (i, &x) in data.iter().enumerate() {
            let pred = Self::predict(i, prev, prev2);
            let residual = x as f64 - pred;
            let code = (residual / (2.0 * eb)).round() as i64;
            let mut accepted = false;
            // unsigned_abs: the float→int cast saturates to i64::MIN for
            // huge negative residuals, where .abs() would overflow.
            if code.unsigned_abs() <= MAX_CODE as u64 {
                let r = (pred + 2.0 * eb * code as f64) as f32;
                // Strict check in f32: the cast may add half an ulp, so we
                // verify rather than trust the algebra.
                if ((x - r).abs() as f64) <= eb && r.is_finite() {
                    symbols.push((code + MAX_CODE + 1) as u32);
                    prev2 = prev;
                    prev = r;
                    accepted = true;
                }
            }
            if !accepted {
                symbols.push(ESCAPE);
                outliers.push(x);
                prev2 = prev;
                prev = x;
            }
        }
        outliers.len() - outliers_before
    }

    /// One quantization step of one predictor chain (the v2 encode fast
    /// path).  Same accept/reject semantics as [`Self::quantize_segment`],
    /// restructured for chain latency: the bin width divide becomes a
    /// multiply by the precomputed reciprocal, and the half-away-from-zero
    /// round is done branchlessly on the magnitude (baseline x86-64 lowers
    /// `f64::round` to a libm call, which would sit on the serial
    /// predict→quantize→verify chain).  The magnitude guard runs *before*
    /// rounding: anything at or past `MAX_CODE + 0.5` bins (including
    /// NaN/inf, which fail the compare) escapes to an outlier exactly as
    /// the reference round-then-range-check would.
    #[inline(always)]
    fn quant_step(
        i: usize,
        x: f32,
        eb: f64,
        inv2eb: f64,
        prev: &mut f32,
        prev2: &mut f32,
        outliers: &mut Vec<f32>,
    ) -> u32 {
        let pred = Self::predict(i, *prev, *prev2);
        let scaled = (x as f64 - pred) * inv2eb;
        let a = scaled.abs();
        if a < MAX_CODE as f64 + 0.5 {
            // a < 32767.5 bounds the truncation and keeps code_abs ≤
            // MAX_CODE after the half-up adjust, so the cast cannot
            // saturate and the symbol stays in range.
            let t = a as i64;
            let code_abs = t + i64::from(a - t as f64 >= 0.5);
            let code = if scaled < 0.0 { -code_abs } else { code_abs };
            let r = (pred + 2.0 * eb * code as f64) as f32;
            // Strict check in f32, exactly as the segment quantizer: the
            // cast may add half an ulp, so verify rather than trust algebra.
            if ((x - r).abs() as f64) <= eb && r.is_finite() {
                *prev2 = *prev;
                *prev = r;
                return (code + MAX_CODE + 1) as u32;
            }
        }
        outliers.push(x);
        *prev2 = *prev;
        *prev = x;
        ESCAPE
    }

    /// Four-lane interleaved quantization: the encode-side twin of
    /// [`Self::reconstruct_interleaved4`].  Each v2 segment is an
    /// independent predictor chain (the predictor restarts per segment), so
    /// one iteration advances four chains and their predict→scale→verify
    /// latency chains overlap instead of serializing.  Fills `symbols`
    /// (pre-sized to `data.len()`) in segment order, one outlier table per
    /// lane.
    fn quantize_interleaved4(
        data: &[f32],
        parts: &[(usize, usize)],
        eb: f64,
        symbols: &mut [u32],
        outliers: &mut [Vec<f32>; 4],
    ) {
        debug_assert_eq!(parts.len(), 4);
        debug_assert_eq!(symbols.len(), data.len());
        let inv2eb = 1.0 / (2.0 * eb);
        // `split_even` partitions the symbol buffer exactly, so the chained
        // splits cannot go out of bounds.
        let (s0, rest) = symbols.split_at_mut(parts[0].1);
        let (s1, rest) = rest.split_at_mut(parts[1].1);
        let (s2, s3) = rest.split_at_mut(parts[2].1);
        let mut segs: [&mut [u32]; 4] = [s0, s1, s2, s3];
        let mut prev = [0.0f32; 4];
        let mut prev2 = [0.0f32; 4];
        let min_len = parts.iter().map(|&(_, len)| len).min().unwrap_or(0);
        // Full rounds: all four lanes active, equal-length slices so the
        // bounds checks hoist out of the loop.
        {
            let d: [&[f32]; 4] = std::array::from_fn(|l| &data[parts[l].0..parts[l].0 + min_len]);
            let [s0, s1, s2, s3] = &mut segs;
            let [o0, o1, o2, o3] = outliers;
            for i in 0..min_len {
                s0[i] = Self::quant_step(i, d[0][i], eb, inv2eb, &mut prev[0], &mut prev2[0], o0);
                s1[i] = Self::quant_step(i, d[1][i], eb, inv2eb, &mut prev[1], &mut prev2[1], o1);
                s2[i] = Self::quant_step(i, d[2][i], eb, inv2eb, &mut prev[2], &mut prev2[2], o2);
                s3[i] = Self::quant_step(i, d[3][i], eb, inv2eb, &mut prev[3], &mut prev2[3], o3);
            }
        }
        // Ragged round: lanes one element longer than the shortest.
        for l in 0..4 {
            let (off, len) = parts[l];
            if len > min_len {
                segs[l][min_len] = Self::quant_step(
                    min_len,
                    data[off + min_len],
                    eb,
                    inv2eb,
                    &mut prev[l],
                    &mut prev2[l],
                    &mut outliers[l],
                );
            }
        }
    }

    /// Encodes the v2 multi-stream container:
    ///
    /// ```text
    /// [magic u64][tag=Sz u8][n_streams u8]
    /// [n u64][eb f64][n_outliers_s u32 × n_streams]
    /// [multi-stream Huffman block over the per-segment symbols]
    /// [outlier f32 tables, one per segment, concatenated]
    /// ```
    fn compress_v2(data: &[f32], eb: f64) -> Vec<u8> {
        let parts = format::split_even(data.len(), V2_STREAMS);
        let mut symbols: Vec<u32> = Vec::new();
        let mut lanes: [Vec<f32>; V2_STREAMS] = Default::default();
        // Size lanes for the outlier-storm case up front: near-lossless
        // budgets escape almost every value, and doubling-growth reallocs
        // on four megabyte-scale tables are pure memory traffic.
        for (lane, &(_, len)) in lanes.iter_mut().zip(&parts) {
            lane.reserve(len);
        }
        if V2_STREAMS == 4 {
            // Interleaved fast path (mirrors the decode side): four lanes
            // in flight hide the per-value chain latency.
            symbols.resize(data.len(), ESCAPE);
            Self::quantize_interleaved4(data, &parts, eb, &mut symbols, &mut lanes);
        } else {
            symbols.reserve(data.len());
            for (s, &(off, len)) in parts.iter().enumerate() {
                Self::quantize_segment(&data[off..off + len], eb, &mut symbols, &mut lanes[s]);
            }
        }

        // Reserve for the worst case (outlier-storm inputs where every value
        // escapes): header + collapsed symbol block + verbatim outliers.
        let n_outliers: usize = lanes.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(128 + symbols.len() + 4 * n_outliers);
        format::write_preamble(&mut out, BackendTag::Sz, V2_STREAMS);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&eb.to_le_bytes());
        for lane in &lanes {
            out.extend_from_slice(&(lane.len() as u32).to_le_bytes());
        }
        let segs: Vec<&[u32]> = parts
            .iter()
            .map(|&(off, len)| &symbols[off..off + len])
            .collect();
        huffman::encode_multi_into(&segs, &mut out);
        // Emit each lane's outlier table in place — the tables are already
        // segment-ordered, so no concatenation pass is needed.
        for lane in &lanes {
            format::write_f32_table(&mut out, lane);
        }
        out
    }

    /// Parses the header and entropy-decodes the quantization symbols into
    /// `scratch.symbols`.  Returns `(n, eb, outlier_table_offset)`.  All
    /// size validation happens here, before any data-sized allocation.
    fn decode_core(
        stream: &[u8],
        scratch: &mut CodecScratch,
    ) -> Result<(usize, f64, usize), CompressError> {
        let mut hdr = 0usize;
        let n = crate::traits::read_len_u64(stream, &mut hdr, "element count")?;
        let eb = crate::traits::read_f64(stream, &mut hdr, "error bound")?;
        let consumed =
            huffman::decode_into(&stream[16..], &mut scratch.symbols, &mut scratch.huff)?;
        if scratch.symbols.len() != n {
            return Err(CompressError::CorruptStream(format!(
                "expected {n} symbols, decoded {}",
                scratch.symbols.len()
            )));
        }
        Ok((n, eb, 16 + consumed))
    }

    /// Fused inverse pass: reconstructs `out` (length == symbol count) from
    /// the quantization symbols and the outlier table at `stream[pos..]`,
    /// carrying the two-element history in registers.
    fn reconstruct(
        stream: &[u8],
        mut pos: usize,
        eb: f64,
        symbols: &[u32],
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        debug_assert_eq!(symbols.len(), out.len());
        // All-escape fast path, as in `reconstruct_v2`: one table entry per
        // element and all symbols escaped means the table IS the data.
        if stream.len() - pos == 4 * out.len() && symbols.iter().all(|&s| s == ESCAPE) {
            format::read_f32_table(&stream[pos..], out);
            return Ok(());
        }
        let mut prev = 0.0f32;
        let mut prev2 = 0.0f32;
        for (i, (&sym, slot)) in symbols.iter().zip(out.iter_mut()).enumerate() {
            let v = if sym == ESCAPE {
                crate::traits::read_f32(stream, &mut pos, "outlier table")?
            } else {
                let code = sym as i64 - MAX_CODE - 1;
                let pred = Self::predict(i, prev, prev2);
                (pred + 2.0 * eb * code as f64) as f32
            };
            *slot = v;
            prev2 = prev;
            prev = v;
        }
        Ok(())
    }

    /// Parses a v2 header and entropy-decodes the symbols into
    /// `scratch.symbols`.  Returns `(n, eb, spans)` where `spans` are the
    /// per-segment outlier tables' absolute `(start, end)` byte ranges.
    /// The declared outlier tables must exactly fill the remaining payload;
    /// a mismatch is a typed [`CompressError::CorruptStream`].
    fn decode_core_v2(
        stream: &[u8],
        scratch: &mut CodecScratch,
    ) -> Result<(usize, f64, Vec<(usize, usize)>), CompressError> {
        let mut pos = 0usize;
        let n_streams = format::read_preamble(stream, &mut pos, BackendTag::Sz)?;
        let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
        let eb = crate::traits::read_f64(stream, &mut pos, "error bound")?;
        let mut counts: Vec<usize> = Vec::with_capacity(n_streams);
        for _ in 0..n_streams {
            counts.push(crate::traits::read_len_u32(stream, &mut pos, "outlier count")? as usize);
        }
        let consumed =
            huffman::decode_multi_into(&stream[pos..], &mut scratch.symbols, &mut scratch.huff)?;
        if scratch.symbols.len() != n {
            return Err(CompressError::CorruptStream(format!(
                "expected {n} symbols, decoded {}",
                scratch.symbols.len()
            )));
        }
        let table_off = pos + consumed;
        let mut total = 0usize;
        for &c in &counts {
            total = c
                .checked_mul(4)
                .and_then(|b| total.checked_add(b))
                .ok_or_else(|| {
                    CompressError::CorruptStream("outlier table lengths overflow".into())
                })?;
        }
        // Strict framing: the declared per-segment outlier tables must sum
        // to exactly the remaining payload, no silent truncation or slack.
        if stream.len() - table_off != total {
            return Err(CompressError::CorruptStream(format!(
                "v2 outlier tables declare {total} bytes but the payload holds {}",
                stream.len() - table_off
            )));
        }
        let mut spans = Vec::with_capacity(n_streams);
        let mut start = table_off;
        for &c in &counts {
            spans.push((start, start + c * 4));
            start += c * 4;
        }
        Ok((n, eb, spans))
    }

    /// Fused inverse pass over one predictor segment, reading outliers from
    /// the segment's own table span.  The span must be consumed exactly.
    fn reconstruct_segment(
        stream: &[u8],
        span: (usize, usize),
        eb: f64,
        symbols: &[u32],
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        debug_assert_eq!(symbols.len(), out.len());
        let (mut cur, end) = span;
        let mut prev = 0.0f32;
        let mut prev2 = 0.0f32;
        for (i, (&sym, slot)) in symbols.iter().zip(out.iter_mut()).enumerate() {
            let v = Self::lane_step(stream, i, sym, eb, &mut prev, &mut prev2, &mut cur, end)?;
            *slot = v;
        }
        if cur != end {
            return Err(CompressError::CorruptStream(format!(
                "segment outlier table has {} unread bytes",
                end - cur
            )));
        }
        Ok(())
    }

    /// One reconstruction step of one predictor chain: dequantize or read
    /// an outlier from the lane's own table span, then shift the history.
    #[inline(always)]
    #[allow(clippy::too_many_arguments)]
    fn lane_step(
        stream: &[u8],
        i: usize,
        sym: u32,
        eb: f64,
        prev: &mut f32,
        prev2: &mut f32,
        cur: &mut usize,
        end: usize,
    ) -> Result<f32, CompressError> {
        let v = if sym == ESCAPE {
            if end - *cur < 4 {
                return Err(CompressError::CorruptStream(
                    "segment outlier table exhausted".into(),
                ));
            }
            crate::traits::read_f32(stream, cur, "outlier table")?
        } else {
            let code = sym as i64 - MAX_CODE - 1;
            let pred = Self::predict(i, *prev, *prev2);
            (pred + 2.0 * eb * code as f64) as f32
        };
        *prev2 = *prev;
        *prev = v;
        Ok(v)
    }

    /// Four-lane interleaved reconstruction: one iteration advances four
    /// independent predictor chains, so the convert→multiply→add latency
    /// chains overlap instead of serializing.  `split_even` guarantees the
    /// segment lengths differ by at most one, so all the branchy tail work
    /// is a single ragged round.
    fn reconstruct_interleaved4(
        stream: &[u8],
        spans: &[(usize, usize)],
        eb: f64,
        symbols: &[u32],
        parts: &[(usize, usize)],
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        debug_assert_eq!(spans.len(), 4);
        debug_assert_eq!(parts.len(), 4);
        // `split_even` partitions `out` exactly, so the chained splits
        // cannot go out of bounds.
        let (r0, rest) = out.split_at_mut(parts[0].1);
        let (r1, rest) = rest.split_at_mut(parts[1].1);
        let (r2, r3) = rest.split_at_mut(parts[2].1);
        let mut regions: [&mut [f32]; 4] = [r0, r1, r2, r3];
        let mut cur = [0usize; 4];
        let mut end = [0usize; 4];
        let mut prev = [0.0f32; 4];
        let mut prev2 = [0.0f32; 4];
        for l in 0..4 {
            cur[l] = spans[l].0;
            end[l] = spans[l].1;
        }
        let min_len = parts.iter().map(|&(_, len)| len).min().unwrap_or(0);
        // Full rounds: all four lanes active, equal-length slices so the
        // bounds checks hoist out of the loop.
        {
            let s: [&[u32]; 4] =
                std::array::from_fn(|l| &symbols[parts[l].0..parts[l].0 + min_len]);
            let [r0, r1, r2, r3] = &mut regions;
            for i in 0..min_len {
                r0[i] = Self::lane_step(
                    stream,
                    i,
                    s[0][i],
                    eb,
                    &mut prev[0],
                    &mut prev2[0],
                    &mut cur[0],
                    end[0],
                )?;
                r1[i] = Self::lane_step(
                    stream,
                    i,
                    s[1][i],
                    eb,
                    &mut prev[1],
                    &mut prev2[1],
                    &mut cur[1],
                    end[1],
                )?;
                r2[i] = Self::lane_step(
                    stream,
                    i,
                    s[2][i],
                    eb,
                    &mut prev[2],
                    &mut prev2[2],
                    &mut cur[2],
                    end[2],
                )?;
                r3[i] = Self::lane_step(
                    stream,
                    i,
                    s[3][i],
                    eb,
                    &mut prev[3],
                    &mut prev2[3],
                    &mut cur[3],
                    end[3],
                )?;
            }
        }
        // Ragged round: lanes one element longer than the shortest.
        for l in 0..4 {
            let (off, len) = parts[l];
            if len > min_len {
                let sym = symbols[off + min_len];
                regions[l][min_len] = Self::lane_step(
                    stream,
                    min_len,
                    sym,
                    eb,
                    &mut prev[l],
                    &mut prev2[l],
                    &mut cur[l],
                    end[l],
                )?;
            }
        }
        for l in 0..4 {
            if cur[l] != end[l] {
                return Err(CompressError::CorruptStream(format!(
                    "segment outlier table has {} unread bytes",
                    end[l] - cur[l]
                )));
            }
        }
        Ok(())
    }

    /// Reconstructs a v2 stream: interleaved four-lane fast path, generic
    /// per-segment loop otherwise.
    fn reconstruct_v2(
        stream: &[u8],
        spans: &[(usize, usize)],
        eb: f64,
        symbols: &[u32],
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        let _span = errflow_obs::trace::span("codec.sz.v2.reconstruct");
        errflow_obs::counter("codec.decode.streams.sz").add(spans.len() as u64);
        let parts = format::split_even(out.len(), spans.len());
        // All-escape fast path: when every lane's outlier table holds one
        // value per element AND every symbol really is the escape, the
        // predictor history is never consulted and each lane is its table
        // verbatim.  Near-lossless tolerances (the serve hot path) put
        // almost every value over budget, so this turns the whole inverse
        // pass into a bulk copy.  The symbol scan keeps corrupt-stream
        // behaviour identical to the slow path, which only reads one table
        // entry per escape symbol.
        let all_escape = spans.iter().zip(&parts).all(|(&(s0, s1), &(off, len))| {
            s1 - s0 == 4 * len && symbols[off..off + len].iter().all(|&s| s == ESCAPE)
        });
        if all_escape {
            for (&(s0, _), &(off, len)) in spans.iter().zip(&parts) {
                format::read_f32_table(&stream[s0..s0 + 4 * len], &mut out[off..off + len]);
            }
            return Ok(());
        }
        if spans.len() == 4 {
            return Self::reconstruct_interleaved4(stream, spans, eb, symbols, &parts, out);
        }
        for (s, &(off, len)) in parts.iter().enumerate() {
            Self::reconstruct_segment(
                stream,
                spans[s],
                eb,
                &symbols[off..off + len],
                &mut out[off..off + len],
            )?;
        }
        Ok(())
    }
}

impl Compressor for SzCompressor {
    fn name(&self) -> &'static str {
        "sz"
    }

    fn supports(&self, _bound: &ErrorBound) -> bool {
        // SZ supports both L∞ and L2 tolerances (Figs. 13, 14).
        true
    }

    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
        let _span = errflow_obs::trace::span("codec.sz.compress");
        check_tolerance(bound.tolerance)?;
        let eb = bound.pointwise_budget(data);
        if !self.emit_v1 {
            return Ok(Self::compress_v2(data, eb));
        }
        let mut scratch = scratch::acquire();
        let CodecScratch { symbols, .. } = &mut *scratch;
        symbols.clear();
        symbols.reserve(data.len());
        let mut outliers: Vec<f32> = Vec::new();
        Self::quantize_segment(data, eb, symbols, &mut outliers);

        let mut out = Vec::new();
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&eb.to_le_bytes());
        huffman::encode_into(symbols, &mut out);
        format::write_f32_table(&mut out, &outliers);
        Ok(out)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
        let _span = errflow_obs::trace::span("codec.sz.decompress");
        let mut scratch = scratch::acquire();
        if format::is_v2(stream) {
            let (n, eb, spans) = Self::decode_core_v2(stream, &mut scratch)?;
            let mut recon = vec![0.0f32; n];
            Self::reconstruct_v2(stream, &spans, eb, &scratch.symbols, &mut recon)?;
            return Ok(recon);
        }
        let (n, eb, pos) = Self::decode_core(stream, &mut scratch)?;
        // n == symbols.len() here, which the entropy decoder already
        // bounded by the actual payload size — safe to allocate.
        let mut recon = vec![0.0f32; n];
        Self::reconstruct(stream, pos, eb, &scratch.symbols, &mut recon)?;
        Ok(recon)
    }

    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        scratch: &mut CodecScratch,
    ) -> Result<(), CompressError> {
        if format::is_v2(stream) {
            let (n, eb, spans) = Self::decode_core_v2(stream, scratch)?;
            if n != out.len() {
                return Err(CompressError::CorruptStream(format!(
                    "stream declares {n} values, expected {}",
                    out.len()
                )));
            }
            return Self::reconstruct_v2(stream, &spans, eb, &scratch.symbols, out);
        }
        let (n, eb, pos) = Self::decode_core(stream, scratch)?;
        if n != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {}",
                out.len()
            )));
        }
        Self::reconstruct(stream, pos, eb, &scratch.symbols, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_bound::BoundMode;
    use errflow_tensor::rng::StdRng;

    fn smooth_field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                (t * 12.0).sin() + 0.3 * (t * 40.0).cos()
            })
            .collect()
    }

    #[test]
    fn roundtrip_respects_abs_linf_bound() {
        let data = smooth_field(4096);
        for tol in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::abs_linf(tol);
            let sz = SzCompressor::new();
            let stream = sz.compress(&data, &bound).unwrap();
            let recon = sz.decompress(&stream).unwrap();
            assert!(bound.verify(&data, &recon), "tol={tol}");
        }
    }

    #[test]
    fn roundtrip_respects_rel_bounds() {
        let data = smooth_field(2048);
        let sz = SzCompressor::new();
        for bound in [
            ErrorBound::rel_linf(1e-3),
            ErrorBound::abs_l2(1e-2),
            ErrorBound::rel_l2(1e-4),
        ] {
            let stream = sz.compress(&data, &bound).unwrap();
            let recon = sz.decompress(&stream).unwrap();
            assert!(bound.verify(&data, &recon), "{bound:?}");
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_field(16_384);
        let sz = SzCompressor::new();
        let stream = sz.compress(&data, &ErrorBound::rel_linf(1e-3)).unwrap();
        let ratio = (data.len() * 4) as f64 / stream.len() as f64;
        assert!(ratio > 8.0, "ratio = {ratio:.2}");
    }

    #[test]
    fn ratio_grows_with_tolerance() {
        let data = smooth_field(8192);
        let sz = SzCompressor::new();
        let len_at = |tol: f64| {
            sz.compress(&data, &ErrorBound::rel_linf(tol))
                .unwrap()
                .len()
        };
        assert!(len_at(1e-2) < len_at(1e-4));
        assert!(len_at(1e-4) < len_at(1e-6));
    }

    #[test]
    fn random_noise_still_bounded() {
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f32> = (0..2000).map(|_| rng.gen_range(-10.0..10.0)).collect();
        let sz = SzCompressor::new();
        let bound = ErrorBound::abs_linf(1e-3);
        let recon = sz.decompress(&sz.compress(&data, &bound).unwrap()).unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn extreme_values_become_outliers() {
        let mut data = smooth_field(128);
        data[50] = 1e30;
        data[51] = -1e30;
        let sz = SzCompressor::new();
        let bound = ErrorBound::abs_linf(1e-4);
        let recon = sz.decompress(&sz.compress(&data, &bound).unwrap()).unwrap();
        assert!(bound.verify(&data, &recon));
        assert_eq!(recon[50], 1e30);
    }

    #[test]
    fn empty_and_single_element() {
        let sz = SzCompressor::new();
        let bound = ErrorBound::abs_linf(1e-3);
        let empty = sz.decompress(&sz.compress(&[], &bound).unwrap()).unwrap();
        assert!(empty.is_empty());
        let one = sz
            .decompress(&sz.compress(&[42.0], &bound).unwrap())
            .unwrap();
        assert!((one[0] - 42.0).abs() <= 1e-3);
    }

    #[test]
    fn invalid_tolerance_rejected() {
        let sz = SzCompressor::new();
        assert!(sz.compress(&[1.0], &ErrorBound::abs_linf(0.0)).is_err());
        assert!(sz
            .compress(&[1.0], &ErrorBound::abs_linf(f64::NAN))
            .is_err());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let sz = SzCompressor::new();
        assert!(sz.decompress(&[1, 2, 3]).is_err());
        let stream = sz
            .compress(&smooth_field(100), &ErrorBound::abs_linf(1e-3))
            .unwrap();
        assert!(sz.decompress(&stream[..stream.len() / 2]).is_err());
    }

    #[test]
    fn supports_all_modes() {
        let sz = SzCompressor::new();
        for mode in [
            BoundMode::AbsLInf,
            BoundMode::RelLInf,
            BoundMode::AbsL2,
            BoundMode::RelL2,
        ] {
            assert!(sz.supports(&ErrorBound {
                tolerance: 1e-3,
                mode
            }));
        }
    }

    #[test]
    fn roundtrip_stats() {
        let data = smooth_field(4096);
        let sz = SzCompressor::new();
        let (recon, stats) = sz.roundtrip(&data, &ErrorBound::rel_linf(1e-3)).unwrap();
        assert_eq!(recon.len(), data.len());
        assert!(stats.ratio() > 1.0);
        assert!(stats.compress_secs >= 0.0);
    }

    #[test]
    fn prop_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0xE0);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-6.0f64..-1.0));
            let n = rng.gen_range(1usize..512);
            // Mix of smooth signal and noise.
            let data: Vec<f32> = (0..n)
                .map(|i| ((i as f32) * 0.1).sin() * 5.0 + rng.gen_range(-1.0f32..1.0))
                .collect();
            let sz = SzCompressor::new();
            let bound = ErrorBound::abs_linf(tol);
            let recon = sz.decompress(&sz.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }

    #[test]
    fn v2_interleaved_quantizer_matches_segment_quantizer() {
        // With a power-of-two bin width the reciprocal multiply is exact,
        // so the interleaved encoder's accept/reject and code decisions
        // must match the per-segment reference bit for bit — including
        // rounding ties (residuals at exact half-bin multiples), values at
        // the MAX_CODE escape boundary, and verbatim extremes.
        let eb = 0.25f64;
        let mut rng = StdRng::seed_from_u64(0xE2);
        let mut data: Vec<f32> = Vec::new();
        for i in 0..4096 {
            data.push((i % 13) as f32 * 0.25 - 1.5); // exact tie candidates
        }
        for _ in 0..2048 {
            data.push(rng.gen_range(-50.0f32..50.0));
        }
        // Residuals near the code-range edge (MAX_CODE bins ≈ 16383.75
        // from a zero history) and verbatim outliers.
        data.extend_from_slice(&[16383.5, -16383.75, 16384.0, 1e30, -1e30, 0.0]);

        let parts = format::split_even(data.len(), 4);
        let mut want_symbols: Vec<u32> = Vec::new();
        let mut want_outliers: Vec<f32> = Vec::new();
        for &(off, len) in &parts {
            SzCompressor::quantize_segment(
                &data[off..off + len],
                eb,
                &mut want_symbols,
                &mut want_outliers,
            );
        }

        let mut got_symbols = vec![ESCAPE; data.len()];
        let mut lanes: [Vec<f32>; 4] = Default::default();
        SzCompressor::quantize_interleaved4(&data, &parts, eb, &mut got_symbols, &mut lanes);
        let got_outliers: Vec<f32> = lanes.iter().flatten().copied().collect();

        assert_eq!(got_symbols, want_symbols);
        assert_eq!(got_outliers, want_outliers);
        assert!(want_outliers.iter().any(|&v| v == 1e30), "extremes escape");
    }

    #[test]
    fn prop_l2_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0xE1);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-4.0f64..-1.0));
            let data: Vec<f32> = (0..256).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
            let sz = SzCompressor::new();
            let bound = ErrorBound::abs_l2(tol);
            let recon = sz.decompress(&sz.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }
}
