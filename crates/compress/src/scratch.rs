//! Reusable per-decode scratch state and a process-wide scratch pool.
//!
//! Every decompression needs the same transient buffers: Huffman decode
//! tables, a quantization-symbol vector, and float workspaces for the
//! multilevel backends.  [`CodecScratch`] bundles them; [`acquire`] checks
//! one out of a global free-list so steady-state decompression — the serve
//! workers and `ChunkedCompressor`'s per-chunk tasks — performs zero heap
//! allocations once the pool is warm.  Hit/miss counters are exported via
//! [`pool_stats`] and surfaced in the serve stats block.

use crate::huffman::DecodeScratch;
use errflow_obs::Counter;
use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, OnceLock};

/// Transient buffers shared by the SZ/ZFP/MGARD decode paths.  Buffers grow
/// to the high-water mark of the streams they serve and stay there.
#[derive(Debug, Default)]
pub struct CodecScratch {
    /// Huffman decoder state (prefix table, canonical arrays, RLE buffers).
    pub(crate) huff: DecodeScratch,
    /// Decoded quantization symbols.
    pub(crate) symbols: Vec<u32>,
    /// Float workspace A (MGARD hierarchy arena / coarse level).
    pub(crate) fa: Vec<f32>,
    /// Float workspace B (MGARD reconstruction ping buffer).
    pub(crate) fb: Vec<f32>,
    /// Float workspace C (MGARD reconstruction pong buffer).
    pub(crate) fc: Vec<f32>,
}

impl CodecScratch {
    /// Creates empty scratch state.  Prefer [`acquire`] on hot paths.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Upper bound on pooled entries.  A warm entry holds a ~512 KiB Huffman
/// table plus data-sized float buffers, so the pool is capped rather than
/// unbounded; concurrent demand beyond the cap falls back to fresh
/// allocations that are dropped on release.
const POOL_CAP: usize = 32;

static POOL: Mutex<Vec<CodecScratch>> = Mutex::new(Vec::new());

/// Hit/miss counters live in the process-wide metrics registry
/// (`compress.scratch.{hits,misses}`) so exposition sees them; the cached
/// handles keep the hot path at one relaxed atomic add.
fn hits() -> &'static Counter {
    static HITS: OnceLock<Counter> = OnceLock::new();
    HITS.get_or_init(|| errflow_obs::counter("compress.scratch.hits"))
}

fn misses() -> &'static Counter {
    static MISSES: OnceLock<Counter> = OnceLock::new();
    MISSES.get_or_init(|| errflow_obs::counter("compress.scratch.misses"))
}

/// A pooled [`CodecScratch`], returned to the global pool on drop.
#[derive(Debug)]
pub struct PooledScratch(Option<CodecScratch>);

impl Deref for PooledScratch {
    type Target = CodecScratch;
    fn deref(&self) -> &CodecScratch {
        // audit:allow(panic-reach) the Option is Some from construction until
        // Drop takes it; no user input can reach this state.
        self.0.as_ref().expect("present until drop")
    }
}

impl DerefMut for PooledScratch {
    fn deref_mut(&mut self) -> &mut CodecScratch {
        // audit:allow(panic-reach) same single-owner invariant as Deref.
        self.0.as_mut().expect("present until drop")
    }
}

impl Drop for PooledScratch {
    fn drop(&mut self) {
        if let Some(scratch) = self.0.take() {
            let mut pool = errflow_tensor::sync::lock_recover(&POOL);
            if pool.len() < POOL_CAP {
                pool.push(scratch);
            }
        }
    }
}

/// Checks a scratch bundle out of the global pool (allocating a fresh one
/// on pool miss).  The bundle returns to the pool when dropped.
pub fn acquire() -> PooledScratch {
    let reused = errflow_tensor::sync::lock_recover(&POOL).pop();
    match reused {
        Some(s) => {
            hits().inc();
            PooledScratch(Some(s))
        }
        None => {
            misses().inc();
            PooledScratch(Some(CodecScratch::new()))
        }
    }
}

/// Cumulative `(hits, misses)` of [`acquire`] since process start.  A warm
/// steady state shows a hit rate near 1.0; the first `POOL_CAP` concurrent
/// decodes are unavoidable misses.
pub fn pool_stats() -> (u64, u64) {
    (hits().get(), misses().get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_reuses_returned_scratch() {
        // Warm the pool, stamp a buffer, and check the stamp survives a
        // release/acquire cycle (same allocation handed back).
        let (h0, m0) = pool_stats();
        {
            let mut s = acquire();
            s.symbols.reserve(4096);
        }
        let s = acquire();
        let (h1, m1) = pool_stats();
        assert!(h1 + m1 >= h0 + m0 + 2);
        // After one release, at least one of the two acquires beyond the
        // baseline must have hit (tests run concurrently, so only a lower
        // bound is safe).
        assert!(h1 > h0 || m1 > m0);
        drop(s);
    }

    #[test]
    fn pooled_scratch_derefs() {
        // Pooled scratch may carry stale contents from a previous user —
        // every consumer clears before writing, and so does this test.
        let mut s = acquire();
        s.symbols.clear();
        s.symbols.push(7);
        assert_eq!(s.symbols[0], 7);
        s.symbols.clear();
    }
}
