//! Bit-level stream I/O used by the ZFP-class coder and the Huffman coder.
//!
//! [`BitWriter`] packs bits LSB-first into bytes; [`BitReader`] reads them
//! back.  Both buffer through a 64-bit accumulator so multi-bit operations
//! cost a few ALU ops instead of per-bit byte arithmetic — decompression
//! throughput of the compressors is dominated by these paths.

/// Append-only bit sink.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= (bit as u64) << self.nbits;
        self.nbits += 1;
        if self.nbits == 64 {
            self.flush_words();
        }
    }

    /// Writes the low `n` bits of `value`, LSB first (`n ≤ 64`).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let room = 64 - self.nbits;
        if n <= room {
            self.acc |= value << self.nbits;
            self.nbits += n;
            if self.nbits == 64 {
                self.flush_words();
            }
        } else {
            self.acc |= value << self.nbits;
            let used = room;
            self.nbits = 64;
            self.flush_words();
            self.acc = value >> used;
            self.nbits = n - used;
        }
    }

    #[inline]
    fn flush_words(&mut self) {
        self.buf.extend_from_slice(&self.acc.to_le_bytes());
        self.acc = 0;
        self.nbits = 0;
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Finishes the stream, returning the packed bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let tail_bytes = self.nbits.div_ceil(8) as usize;
        let bytes = self.acc.to_le_bytes();
        self.buf.extend_from_slice(&bytes[..tail_bytes]);
        self.buf
    }

    /// Clears the writer for reuse without releasing its buffer — lets a
    /// scratch-held writer encode repeatedly with zero steady-state
    /// allocations.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.acc = 0;
        self.nbits = 0;
    }

    /// Appends the packed bytes (including the partial tail byte, if any)
    /// to `out` without consuming the writer.  Byte-for-byte identical to
    /// what [`BitWriter::into_bytes`] would return.
    pub fn append_bytes_to(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.buf);
        let tail_bytes = self.nbits.div_ceil(8) as usize;
        out.extend_from_slice(&self.acc.to_le_bytes()[..tail_bytes]);
    }
}

/// Sequential bit source with 64-bit buffered reads.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Total readable bits.
    #[inline]
    fn bit_capacity(&self) -> usize {
        self.buf.len() * 8
    }

    /// Loads up to 57 bits starting at the current position (unchecked
    /// beyond stream end — missing bytes read as zero).
    ///
    /// The in-bounds case compiles to a single unaligned 8-byte load plus a
    /// shift; only the last ≤ 7 bytes of a stream take the zero-padded copy.
    #[inline]
    pub(crate) fn peek_word(&self) -> u64 {
        load_word(self.buf, self.pos)
    }

    /// Advances the cursor by `n` bits with no end-of-stream clamp.  Pairs
    /// with [`BitReader::peek_word`] to pull several fields out of one
    /// 57-bit window; the caller must have verified (e.g. once per block)
    /// that `n` more bits exist.
    #[inline]
    pub(crate) fn advance_unchecked(&mut self, n: usize) {
        debug_assert!(self.pos + n <= self.bit_capacity());
        self.pos += n;
    }

    /// Reads one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_capacity() {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits LSB-first; `None` if the stream ends early.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if self.pos + n as usize > self.bit_capacity() {
            return None;
        }
        let v = if n <= 57 {
            let w = self.peek_word();
            if n == 64 {
                w
            } else {
                w & ((1u64 << n) - 1)
            }
        } else {
            // Split read for 58..=64 bits.
            let lo = self.peek_word() & ((1u64 << 57) - 1);
            let mut tmp = BitReader {
                buf: self.buf,
                pos: self.pos + 57,
            };
            let hi = tmp.read_bits(n - 57)?;
            lo | (hi << 57)
        };
        self.pos += n as usize;
        Some(v)
    }

    /// Peeks up to 16 bits without consuming; bits past the stream end
    /// read as zero.  Used by the table-driven Huffman decoder.
    #[inline]
    pub fn peek_bits_lossy(&self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        self.peek_word() & ((1u64 << n) - 1)
    }

    /// Reads `n ≤ 57` bits without an end-of-stream check: bits past the
    /// stream end read as zero.  This is the ZFP bit-plane inner-loop fast
    /// path — the caller must have verified (once per block, not per read)
    /// that the stream still holds every bit the block can consume, so the
    /// zero-padding case is unreachable on that path.
    #[inline]
    pub fn read_bits_unchecked(&mut self, n: u32) -> u64 {
        debug_assert!(n >= 1 && n <= 57);
        debug_assert!(self.pos + n as usize <= self.bit_capacity());
        let v = self.peek_word() & ((1u64 << n) - 1);
        self.pos += n as usize;
        v
    }

    /// Advances the cursor by `n` bits (clamped to the stream end).
    #[inline]
    pub fn skip_bits(&mut self, n: u32) {
        self.pos = (self.pos + n as usize).min(self.bit_capacity());
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.bit_capacity() - self.pos
    }

    /// Current bit offset.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

/// Loads up to 57 valid bits of `buf` starting at absolute bit `pos`,
/// LSB-first; bits past the end of `buf` read as zero.
///
/// Shared by [`BitReader`] and the Huffman decoder's register-refill loop.
/// The common (fully in-bounds) case is one unaligned little-endian load
/// and a shift.
#[inline]
pub(crate) fn load_word(buf: &[u8], pos: usize) -> u64 {
    let byte = pos >> 3;
    let shift = (pos & 7) as u32;
    if let Some(&w) = buf
        .get(byte..byte + 8)
        .and_then(|s| <&[u8; 8]>::try_from(s).ok())
    {
        u64::from_le_bytes(w) >> shift
    } else {
        let mut word = [0u8; 8];
        if byte < buf.len() {
            word[..buf.len() - byte].copy_from_slice(&buf[byte..]);
        }
        u64::from_le_bytes(word) >> shift
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn random_mixed_widths_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ops: Vec<(u64, u32)> = (0..5000)
            .map(|_| {
                let n = rng.gen_range(1..=64u32);
                let v = rng.gen::<u64>() & if n == 64 { u64::MAX } else { (1 << n) - 1 };
                (v, n)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &ops {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // One byte was emitted, so 8 bits are readable, not 9.
        assert!(r.read_bits(8).is_some());
        assert!(r.read_bit().is_none());
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().is_none());
    }

    #[test]
    fn bit_pos_tracks() {
        let mut w = BitWriter::new();
        w.write_bits(0xff, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 5);
    }

    #[test]
    fn peek_and_skip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1100_1010, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits_lossy(4), 0b1010);
        assert_eq!(r.bit_pos(), 0);
        r.skip_bits(4);
        assert_eq!(r.read_bits(4), Some(0b1100));
        // Peeking past the end pads with zeros.
        assert_eq!(r.peek_bits_lossy(8), 0);
    }

    #[test]
    fn unchecked_reads_match_checked() {
        let mut rng = StdRng::seed_from_u64(11);
        let ops: Vec<(u64, u32)> = (0..2000)
            .map(|_| {
                let n = rng.gen_range(1..=57u32);
                (rng.gen::<u64>() & ((1 << n) - 1), n)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut checked = BitReader::new(&bytes);
        let mut unchecked = BitReader::new(&bytes);
        for &(v, n) in &ops {
            assert_eq!(checked.read_bits(n), Some(v));
            assert_eq!(unchecked.read_bits_unchecked(n), v, "width {n}");
            assert_eq!(checked.bit_pos(), unchecked.bit_pos());
        }
    }

    #[test]
    fn load_word_handles_tails() {
        let buf = [0xAB, 0xCD, 0xEF];
        // Full in-bounds load is impossible (3 bytes); tail path pads zeros.
        assert_eq!(load_word(&buf, 0), 0x00EFCDAB);
        assert_eq!(load_word(&buf, 8), 0x00EFCD);
        assert_eq!(load_word(&buf, 20), 0x0E);
        assert_eq!(load_word(&buf, 24), 0);
        assert_eq!(load_word(&[], 0), 0);
        // In-bounds path: 9 bytes, read at bit 4.
        let long = [0x10, 0x32, 0x54, 0x76, 0x98, 0xBA, 0xDC, 0xFE, 0x0F];
        assert_eq!(load_word(&long, 4), 0x0FEDCBA987654321);
    }

    #[test]
    fn writer_flushes_across_word_boundaries() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write_bits(i, 7);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..100u64 {
            assert_eq!(r.read_bits(7), Some(i));
        }
    }
}
