//! Bit-level stream I/O used by the ZFP-class coder and the Huffman coder.
//!
//! [`BitWriter`] packs bits LSB-first into bytes; [`BitReader`] reads them
//! back.  Both buffer through a 64-bit accumulator so multi-bit operations
//! cost a few ALU ops instead of per-bit byte arithmetic — decompression
//! throughput of the compressors is dominated by these paths.

/// Append-only bit sink.
#[derive(Debug, Default, Clone)]
pub struct BitWriter {
    buf: Vec<u8>,
    acc: u64,
    nbits: u32,
}

impl BitWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Writes a single bit.
    #[inline]
    pub fn write_bit(&mut self, bit: bool) {
        self.acc |= (bit as u64) << self.nbits;
        self.nbits += 1;
        if self.nbits == 64 {
            self.flush_words();
        }
    }

    /// Writes the low `n` bits of `value`, LSB first (`n ≤ 64`).
    #[inline]
    pub fn write_bits(&mut self, value: u64, n: u32) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let value = if n == 64 {
            value
        } else {
            value & ((1u64 << n) - 1)
        };
        let room = 64 - self.nbits;
        if n <= room {
            self.acc |= value << self.nbits;
            self.nbits += n;
            if self.nbits == 64 {
                self.flush_words();
            }
        } else {
            self.acc |= value << self.nbits;
            let used = room;
            self.nbits = 64;
            self.flush_words();
            self.acc = value >> used;
            self.nbits = n - used;
        }
    }

    #[inline]
    fn flush_words(&mut self) {
        self.buf.extend_from_slice(&self.acc.to_le_bytes());
        self.acc = 0;
        self.nbits = 0;
    }

    /// Number of bits written so far.
    pub fn bit_len(&self) -> usize {
        self.buf.len() * 8 + self.nbits as usize
    }

    /// Finishes the stream, returning the packed bytes.
    pub fn into_bytes(mut self) -> Vec<u8> {
        let tail_bytes = self.nbits.div_ceil(8) as usize;
        let bytes = self.acc.to_le_bytes();
        self.buf.extend_from_slice(&bytes[..tail_bytes]);
        self.buf
    }
}

/// Sequential bit source with 64-bit buffered reads.
#[derive(Debug, Clone)]
pub struct BitReader<'a> {
    buf: &'a [u8],
    /// Absolute bit position.
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        BitReader { buf, pos: 0 }
    }

    /// Total readable bits.
    #[inline]
    fn bit_capacity(&self) -> usize {
        self.buf.len() * 8
    }

    /// Loads up to 57 bits starting at the current position (unchecked
    /// beyond stream end — missing bytes read as zero).
    #[inline]
    fn peek_word(&self) -> u64 {
        let byte = self.pos / 8;
        let shift = (self.pos % 8) as u32;
        let mut word = [0u8; 8];
        let end = (byte + 8).min(self.buf.len());
        if byte < self.buf.len() {
            word[..end - byte].copy_from_slice(&self.buf[byte..end]);
        }
        u64::from_le_bytes(word) >> shift
    }

    /// Reads one bit; `None` at end of stream.
    #[inline]
    pub fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_capacity() {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    /// Reads `n` bits LSB-first; `None` if the stream ends early.
    #[inline]
    pub fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if self.pos + n as usize > self.bit_capacity() {
            return None;
        }
        let v = if n <= 57 {
            let w = self.peek_word();
            if n == 64 {
                w
            } else {
                w & ((1u64 << n) - 1)
            }
        } else {
            // Split read for 58..=64 bits.
            let lo = self.peek_word() & ((1u64 << 57) - 1);
            let mut tmp = BitReader {
                buf: self.buf,
                pos: self.pos + 57,
            };
            let hi = tmp.read_bits(n - 57)?;
            lo | (hi << 57)
        };
        self.pos += n as usize;
        Some(v)
    }

    /// Peeks up to 16 bits without consuming; bits past the stream end
    /// read as zero.  Used by the table-driven Huffman decoder.
    #[inline]
    pub fn peek_bits_lossy(&self, n: u32) -> u64 {
        debug_assert!(n <= 57);
        self.peek_word() & ((1u64 << n) - 1)
    }

    /// Advances the cursor by `n` bits (clamped to the stream end).
    #[inline]
    pub fn skip_bits(&mut self, n: u32) {
        self.pos = (self.pos + n as usize).min(self.bit_capacity());
    }

    /// Remaining readable bits.
    #[inline]
    pub fn remaining_bits(&self) -> usize {
        self.bit_capacity() - self.pos
    }

    /// Current bit offset.
    pub fn bit_pos(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    #[test]
    fn single_bits_roundtrip() {
        let mut w = BitWriter::new();
        let pattern = [true, false, true, true, false, false, true, false, true];
        for &b in &pattern {
            w.write_bit(b);
        }
        assert_eq!(w.bit_len(), 9);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &b in &pattern {
            assert_eq!(r.read_bit(), Some(b));
        }
    }

    #[test]
    fn multi_bit_values_roundtrip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1011, 4);
        w.write_bits(0xdead_beef, 32);
        w.write_bits(u64::MAX, 64);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(4), Some(0b1011));
        assert_eq!(r.read_bits(32), Some(0xdead_beef));
        assert_eq!(r.read_bits(64), Some(u64::MAX));
    }

    #[test]
    fn random_mixed_widths_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let ops: Vec<(u64, u32)> = (0..5000)
            .map(|_| {
                let n = rng.gen_range(1..=64u32);
                let v = rng.gen::<u64>() & if n == 64 { u64::MAX } else { (1 << n) - 1 };
                (v, n)
            })
            .collect();
        let mut w = BitWriter::new();
        for &(v, n) in &ops {
            w.write_bits(v, n);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for &(v, n) in &ops {
            assert_eq!(r.read_bits(n), Some(v), "width {n}");
        }
    }

    #[test]
    fn read_past_end_is_none() {
        let mut w = BitWriter::new();
        w.write_bits(0b101, 3);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        // One byte was emitted, so 8 bits are readable, not 9.
        assert!(r.read_bits(8).is_some());
        assert!(r.read_bit().is_none());
    }

    #[test]
    fn empty_stream() {
        let w = BitWriter::new();
        assert_eq!(w.bit_len(), 0);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert!(r.read_bit().is_none());
    }

    #[test]
    fn bit_pos_tracks() {
        let mut w = BitWriter::new();
        w.write_bits(0xff, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        r.read_bits(5);
        assert_eq!(r.bit_pos(), 5);
    }

    #[test]
    fn peek_and_skip() {
        let mut w = BitWriter::new();
        w.write_bits(0b1100_1010, 8);
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.peek_bits_lossy(4), 0b1010);
        assert_eq!(r.bit_pos(), 0);
        r.skip_bits(4);
        assert_eq!(r.read_bits(4), Some(0b1100));
        // Peeking past the end pads with zeros.
        assert_eq!(r.peek_bits_lossy(8), 0);
    }

    #[test]
    fn writer_flushes_across_word_boundaries() {
        let mut w = BitWriter::new();
        for i in 0..100u64 {
            w.write_bits(i, 7);
        }
        let bytes = w.into_bytes();
        let mut r = BitReader::new(&bytes);
        for i in 0..100u64 {
            assert_eq!(r.read_bits(7), Some(i));
        }
    }
}
