//! MGARD-class multilevel error-bounded compressor.
//!
//! MGARD (the paper's references \[26\], \[27\]) decomposes data on a hierarchy
//! of nested grids: each level's odd-indexed nodes are expressed as
//! *multilevel coefficients* — their deviation from the linear interpolation
//! of the surviving even-indexed (coarser) nodes — and the recursion
//! continues on the coarser grid.  Smooth data concentrates energy in the
//! coarse levels, so the fine-level coefficients quantize to near-zero codes
//! that entropy-code extremely well.
//!
//! This implementation uses the closed-loop formulation (as in MGARD+):
//! coefficients are computed against the *reconstructed* coarser grid, so
//! every value's final error is just its own quantization error and the
//! user's pointwise budget can be applied at full strength on every level.
//! Reconstruction is verified in `f32` during compression; any value that
//! would violate the bound is escaped verbatim.

//! Both directions stage the level hierarchy in reused workspace buffers
//! (pooled [`CodecScratch`](crate::CodecScratch)): compression flattens the
//! nested grids into one arena and reconstruction ping-pongs between two
//! level buffers, so steady-state coding allocates nothing per call.

use crate::error_bound::ErrorBound;
use crate::format;
use crate::huffman;
use crate::scratch::{self, CodecScratch};
use crate::traits::{check_tolerance, CompressError, Compressor};

const MAX_CODE: i64 = 32_767;
const ESCAPE: u32 = 0;
/// Recursion stops when a level has at most this many nodes.
const COARSEST_LEN: usize = 3;
/// Hard cap on hierarchy depth.
const MAX_LEVELS: usize = 24;

/// MGARD-class compressor (see module docs).
#[derive(Debug, Clone, Default)]
pub struct MgardCompressor;

impl MgardCompressor {
    /// Creates the compressor with default settings.
    pub fn new() -> Self {
        MgardCompressor
    }

    /// Parses the header, reads the coarse level into `scratch.fa`, and
    /// entropy-decodes the coefficient symbols into `scratch.symbols`.
    /// Returns `(n, eb, level_lengths, outlier_table_offset)`.  All count
    /// validation happens here, before any data-sized allocation.
    fn decode_core(
        stream: &[u8],
        scratch: &mut CodecScratch,
    ) -> Result<(usize, f64, Vec<usize>, usize), CompressError> {
        let mut pos = 0usize;
        let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
        let eb = crate::traits::read_f64(stream, &mut pos, "error bound")?;
        let coarse_len = crate::traits::read_len_u32(stream, &mut pos, "coarse length")?;
        let lens = level_lengths(n);
        let expected_coarse = lens.last().copied().ok_or_else(|| {
            CompressError::CorruptStream("no levels for declared element count".into())
        })?;
        if coarse_len != expected_coarse {
            return Err(CompressError::CorruptStream(format!(
                "coarse length {coarse_len} inconsistent with n={n}"
            )));
        }
        let coarse = &mut scratch.fa;
        coarse.clear();
        coarse.reserve(crate::traits::safe_capacity(coarse_len, stream.len()));
        for _ in 0..coarse_len {
            coarse.push(crate::traits::read_f32(stream, &mut pos, "coarse level")?);
        }
        let consumed =
            huffman::decode_into(&stream[pos..], &mut scratch.symbols, &mut scratch.huff)?;
        pos += consumed;

        let expected_symbols: usize = lens
            .iter()
            .take(lens.len().saturating_sub(1))
            .map(|&len| len / 2)
            .sum();
        if scratch.symbols.len() != expected_symbols {
            return Err(CompressError::CorruptStream(format!(
                "expected {expected_symbols} coefficients, decoded {}",
                scratch.symbols.len()
            )));
        }
        Ok((n, eb, lens, pos))
    }

    /// Closed-loop reconstruction coarsest → finest, ping-ponging between
    /// the scratch buffers; the finest level lands directly in `out`
    /// (`out.len() == lens[0]`).  Expects the coarse level in `scratch.fa`
    /// and the coefficient symbols in `scratch.symbols`.
    fn reconstruct(
        stream: &[u8],
        mut pos: usize,
        eb: f64,
        lens: &[usize],
        scratch: &mut CodecScratch,
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        debug_assert_eq!(out.len(), lens[0]);
        let CodecScratch {
            symbols, fa, fb, ..
        } = scratch;
        if lens.len() == 1 {
            out.copy_from_slice(fa);
            return Ok(());
        }
        let mut sym_idx = 0usize;
        let (mut cur, mut next) = (&mut *fa, &mut *fb);
        for k in (0..lens.len() - 1).rev() {
            let len = lens[k];
            if k == 0 {
                Self::reconstruct_level(stream, &mut pos, eb, symbols, &mut sym_idx, cur, out)?;
            } else {
                next.clear();
                next.resize(len, 0.0);
                Self::reconstruct_level(stream, &mut pos, eb, symbols, &mut sym_idx, cur, next)?;
                std::mem::swap(&mut cur, &mut next);
            }
        }
        Ok(())
    }

    /// Reconstructs one level: even nodes copy the coarser level, odd nodes
    /// add the dequantized coefficient to the interpolation of their
    /// neighbours (or take a verbatim outlier from `stream`).
    fn reconstruct_level(
        stream: &[u8],
        pos: &mut usize,
        eb: f64,
        symbols: &[u32],
        sym_idx: &mut usize,
        coarse: &[f32],
        recon: &mut [f32],
    ) -> Result<(), CompressError> {
        let len = recon.len();
        for (j, &v) in coarse.iter().enumerate() {
            recon[2 * j] = v;
        }
        for i in (1..len).step_by(2) {
            let sym = symbols[*sym_idx];
            *sym_idx += 1;
            if sym == ESCAPE {
                recon[i] = crate::traits::read_f32(stream, pos, "outlier table")?;
            } else {
                let code = sym as i64 - MAX_CODE - 1;
                let pred = interpolate(recon, i, len);
                recon[i] = (pred as f64 + 2.0 * eb * code as f64) as f32;
            }
        }
        Ok(())
    }
}

/// Lengths of each level, finest (index 0) to coarsest.
fn level_lengths(n: usize) -> Vec<usize> {
    let mut lens = vec![n];
    let mut cur = n;
    while cur > COARSEST_LEN && lens.len() < MAX_LEVELS {
        cur = cur.div_ceil(2);
        lens.push(cur);
    }
    lens
}

/// Linear interpolation of odd node `i` from its even neighbours within a
/// level of length `len` (endpoint odd nodes copy their left neighbour).
#[inline]
fn interpolate(recon: &[f32], i: usize, len: usize) -> f32 {
    if i + 1 < len {
        0.5 * (recon[i - 1] + recon[i + 1])
    } else {
        recon[i - 1]
    }
}

impl Compressor for MgardCompressor {
    fn name(&self) -> &'static str {
        "mgard"
    }

    fn supports(&self, _bound: &ErrorBound) -> bool {
        // MGARD handles both L∞ and L2 tolerances (Figs. 11, 12).
        true
    }

    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
        let _span = errflow_obs::trace::span("codec.mgard.compress");
        check_tolerance(bound.tolerance)?;
        let eb = bound.pointwise_budget(data);
        let lens = level_lengths(data.len());

        let mut pooled = scratch::acquire();
        let CodecScratch {
            symbols,
            fa,
            fb,
            fc,
            ..
        } = &mut *pooled;

        // Flatten the value hierarchy into one arena: level k starts at
        // offsets[k] and satisfies fa[offsets[k] + j] = fa[offsets[k-1] + 2j].
        let total: usize = lens.iter().sum();
        fa.clear();
        fa.reserve(total);
        fa.extend_from_slice(data);
        let mut offsets = vec![0usize; lens.len()];
        for k in 1..lens.len() {
            offsets[k] = fa.len();
            let start = offsets[k - 1];
            for j in (0..lens[k - 1]).step_by(2) {
                let v = fa[start + j];
                fa.push(v);
            }
        }
        // `level_lengths` always returns at least one level for nonempty
        // data; empty lists degrade to an empty coarse band.
        let coarse_start = offsets.last().copied().unwrap_or(0);
        let coarse_len = lens.last().copied().unwrap_or(0);

        symbols.clear();
        let mut outliers: Vec<f32> = Vec::new();

        // Closed-loop reconstruction, coarsest → finest, ping-ponging
        // between the two workspace buffers instead of allocating per level.
        fb.clear();
        fb.extend_from_slice(&fa[coarse_start..coarse_start + coarse_len]);
        let (mut cur, mut next) = (&mut *fb, &mut *fc);
        for k in (0..lens.len().saturating_sub(1)).rev() {
            let len = lens[k];
            next.clear();
            next.resize(len, 0.0);
            for (j, &v) in cur.iter().enumerate() {
                next[2 * j] = v;
            }
            for i in (1..len).step_by(2) {
                let x = fa[offsets[k] + i];
                let pred = interpolate(next, i, len);
                let d = x as f64 - pred as f64;
                let code = (d / (2.0 * eb)).round() as i64;
                let mut accepted = false;
                // unsigned_abs: the float→int cast saturates to i64::MIN
                // for huge negative residuals, where .abs() would overflow.
                if code.unsigned_abs() <= MAX_CODE as u64 {
                    let r = (pred as f64 + 2.0 * eb * code as f64) as f32;
                    if ((x - r).abs() as f64) <= eb && r.is_finite() {
                        symbols.push((code + MAX_CODE + 1) as u32);
                        next[i] = r;
                        accepted = true;
                    }
                }
                if !accepted {
                    symbols.push(ESCAPE);
                    outliers.push(x);
                    next[i] = x;
                }
            }
            std::mem::swap(&mut cur, &mut next);
        }

        let mut out = Vec::new();
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&eb.to_le_bytes());
        out.extend_from_slice(&(coarse_len as u32).to_le_bytes());
        format::write_f32_table(&mut out, &fa[coarse_start..coarse_start + coarse_len]);
        huffman::encode_into(symbols, &mut out);
        format::write_f32_table(&mut out, &outliers);
        Ok(out)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
        let _span = errflow_obs::trace::span("codec.mgard.decompress");
        let mut pooled = scratch::acquire();
        let (n, eb, lens, pos) = Self::decode_core(stream, &mut pooled)?;
        // n equals decoded-symbol count + coarse count at this point, both
        // already bounded by actual stream contents — safe to allocate.
        let mut out = vec![0.0f32; n];
        Self::reconstruct(stream, pos, eb, &lens, &mut pooled, &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        scratch: &mut CodecScratch,
    ) -> Result<(), CompressError> {
        let (n, eb, lens, pos) = Self::decode_core(stream, scratch)?;
        if n != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {}",
                out.len()
            )));
        }
        Self::reconstruct(stream, pos, eb, &lens, scratch, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn smooth_field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                (t * 7.0).sin() * 1.5 + 0.25 * (t * 31.0).cos()
            })
            .collect()
    }

    #[test]
    fn level_lengths_halve() {
        assert_eq!(level_lengths(9), vec![9, 5, 3]);
        assert_eq!(level_lengths(3), vec![3]);
        assert_eq!(level_lengths(1), vec![1]);
        assert_eq!(level_lengths(0), vec![0]);
        assert_eq!(level_lengths(16), vec![16, 8, 4, 2]);
    }

    #[test]
    fn coefficient_symbol_count_matches() {
        // Every element is either a coefficient (odd node at exactly one
        // level) or survives to the coarsest level:
        // Σ_levels ⌊len/2⌋ + coarse_len == n for any n.
        for n in [1usize, 2, 3, 7, 16, 100, 1023] {
            let lens = level_lengths(n);
            let coeffs: usize = lens[..lens.len() - 1].iter().map(|&l| l / 2).sum();
            assert_eq!(coeffs + lens.last().unwrap(), n, "n={n}");
        }
    }

    #[test]
    fn roundtrip_respects_abs_linf_bound() {
        let data = smooth_field(4096);
        let m = MgardCompressor::new();
        for tol in [1e-2, 1e-4, 1e-6] {
            let bound = ErrorBound::abs_linf(tol);
            let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon), "tol={tol}");
        }
    }

    #[test]
    fn roundtrip_respects_l2_bounds() {
        let data = smooth_field(2048);
        let m = MgardCompressor::new();
        for bound in [ErrorBound::abs_l2(1e-2), ErrorBound::rel_l2(1e-4)] {
            let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon), "{bound:?}");
        }
    }

    #[test]
    fn smooth_data_compresses_well() {
        let data = smooth_field(16_384);
        let m = MgardCompressor::new();
        let stream = m.compress(&data, &ErrorBound::rel_linf(1e-3)).unwrap();
        let ratio = (data.len() * 4) as f64 / stream.len() as f64;
        assert!(ratio > 6.0, "ratio = {ratio:.2}");
    }

    #[test]
    fn ratio_grows_with_tolerance() {
        let data = smooth_field(8192);
        let m = MgardCompressor::new();
        let len_at = |tol: f64| m.compress(&data, &ErrorBound::rel_linf(tol)).unwrap().len();
        assert!(len_at(1e-2) < len_at(1e-5));
    }

    #[test]
    fn outliers_handled() {
        let mut data = smooth_field(256);
        data[100] = 1e28;
        let m = MgardCompressor::new();
        let bound = ErrorBound::abs_linf(1e-5);
        let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn small_inputs() {
        let m = MgardCompressor::new();
        let bound = ErrorBound::abs_linf(1e-3);
        for n in [0usize, 1, 2, 3, 4, 5] {
            let data = smooth_field(n);
            let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
            assert_eq!(recon.len(), n, "n={n}");
            assert!(bound.verify(&data, &recon), "n={n}");
        }
    }

    #[test]
    fn coarse_level_is_exact() {
        // Coarsest nodes are stored verbatim: stride-2^K samples are exact.
        let data = smooth_field(33);
        let m = MgardCompressor::new();
        let recon = m
            .decompress(&m.compress(&data, &ErrorBound::abs_linf(1e-1)).unwrap())
            .unwrap();
        // Index 0 survives to every coarser level.
        assert_eq!(recon[0], data[0]);
    }

    #[test]
    fn corrupt_stream_rejected() {
        let m = MgardCompressor::new();
        assert!(m.decompress(&[0; 10]).is_err());
        let stream = m
            .compress(&smooth_field(200), &ErrorBound::abs_linf(1e-3))
            .unwrap();
        assert!(m.decompress(&stream[..stream.len() - 3]).is_err());
    }

    #[test]
    fn prop_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0xD0);
        for _ in 0..64 {
            // Log-uniform tolerances cover all magnitudes evenly.
            let tol = 10f64.powf(rng.gen_range(-6.0f64..-1.0));
            let n = rng.gen_range(1usize..400);
            let data: Vec<f32> = (0..n)
                .map(|i| ((i as f32) * 0.05).cos() * 2.0 + rng.gen_range(-0.3f32..0.3))
                .collect();
            let m = MgardCompressor::new();
            let bound = ErrorBound::abs_linf(tol);
            let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }

    #[test]
    fn prop_l2_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0xD1);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-4.0f64..-1.0));
            let data: Vec<f32> = (0..311).map(|_| rng.gen_range(-1.0f32..1.0)).collect();
            let m = MgardCompressor::new();
            let bound = ErrorBound::abs_l2(tol);
            let recon = m.decompress(&m.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }
}
