//! ZFP-class fixed-accuracy compressor.
//!
//! ZFP (the paper's reference \[7\]) compresses floating-point arrays in
//! fixed-size blocks: each block is aligned to a common exponent, converted
//! to integers, passed through a reversible decorrelating transform, and
//! its coefficients are truncated to exactly the precision the accuracy
//! target requires.  Because every step is local to a 4-value block, the
//! codec is branch-light and fast in both directions — which is why the
//! paper observes ZFP's I/O throughput staying flat across tolerance levels
//! (Fig. 7) while SZ/MGARD dip.
//!
//! This implementation uses the exactly-reversible integer S-transform
//! (two-level Haar lifting) as the decorrelator and sign-magnitude storage
//! of precision-truncated coefficients.  Like real ZFP, it supports
//! **pointwise (L∞) tolerances only** — requesting an L2 bound returns
//! [`CompressError::UnsupportedBound`], matching the restriction the paper
//! notes for Figs. 8, 12 and 14.
//!
//! ## Stream versions
//!
//! By default the encoder writes the **v2 interleaved container**: the
//! [`crate::format::MAGIC_V2`] preamble, then the block payload split into
//! [`crate::format::V2_STREAMS`] independently-decodable sub-streams
//! (blocks distributed contiguously and evenly).  One serial bit stream
//! has a carried dependency per block read; four sub-streams let the
//! decoder run four block pipelines at once — interleaved scalar reads
//! portably, with the transform/scale stage vectorized over one block per
//! AVX2 lane (see `zfp_simd`).  [`ZfpCompressor::v1_format`] keeps
//! emitting the legacy single-stream layout, which every decoder still
//! accepts (and the frozen [`crate::reference`] oracle proves bit-exact).

use crate::bitstream::{BitReader, BitWriter};
use crate::error_bound::ErrorBound;
use crate::format::{self, BackendTag, V2_STREAMS};
use crate::traits::{check_tolerance, CompressError, Compressor};

/// Working integer precision (bits of the normalised significand).
pub(crate) const PRECISION: i32 = 38;

/// ZFP-class compressor (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ZfpCompressor {
    /// Emit the legacy v1 single-stream layout instead of v2.
    emit_v1: bool,
}

impl ZfpCompressor {
    /// Creates the compressor with default settings (v2 streams).
    pub fn new() -> Self {
        ZfpCompressor::default()
    }

    /// Creates a compressor that emits the legacy v1 single-stream layout
    /// (bit-identical to the frozen reference encoder).  Decoding accepts
    /// both layouts regardless of this setting.
    pub fn v1_format() -> Self {
        ZfpCompressor { emit_v1: true }
    }
}

/// Forward reversible S-transform on a 4-value block (two Haar levels).
fn fwd_transform(p: &mut [i64; 4]) {
    let (l0, h0) = haar_fwd(p[0], p[1]);
    let (l1, h1) = haar_fwd(p[2], p[3]);
    let (ll, lh) = haar_fwd(l0, l1);
    *p = [ll, lh, h0, h1];
}

/// Exact inverse of [`fwd_transform`].
fn inv_transform(p: &mut [i64; 4]) {
    let [ll, lh, h0, h1] = *p;
    let (l0, l1) = haar_inv(ll, lh);
    let (a, b) = haar_inv(l0, h0);
    let (c, d) = haar_inv(l1, h1);
    *p = [a, b, c, d];
}

/// Reversible Haar pair: `l = ⌊(a+b)/2⌋`, `h = a − b`.
///
/// Wrapping arithmetic: valid streams never overflow (coefficients stay
/// within PRECISION+2 bits), but *corrupt* streams can decode arbitrary
/// 63-bit magnitudes, and decompression must stay panic-free on them.
#[inline]
fn haar_fwd(a: i64, b: i64) -> (i64, i64) {
    (a.wrapping_add(b) >> 1, a.wrapping_sub(b))
}

/// Exact inverse of [`haar_fwd`] (same wrapping rationale).
#[inline]
fn haar_inv(l: i64, h: i64) -> (i64, i64) {
    let a = l.wrapping_add(h.wrapping_add(1) >> 1);
    (a, a.wrapping_sub(h))
}

impl Compressor for ZfpCompressor {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn supports(&self, bound: &ErrorBound) -> bool {
        !bound.mode.is_l2()
    }

    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
        let _span = errflow_obs::trace::span("codec.zfp.compress");
        check_tolerance(bound.tolerance)?;
        if bound.mode.is_l2() {
            return Err(CompressError::UnsupportedBound {
                backend: "zfp",
                reason: "ZFP supports pointwise (L-infinity) tolerances only".into(),
            });
        }
        let budget = bound.pointwise_budget(data);
        if !self.emit_v1 {
            return Ok(compress_v2(data, budget));
        }
        let mut w = BitWriter::new();
        for chunk in data.chunks(4) {
            encode_block(chunk, budget, &mut w);
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
        let _span = errflow_obs::trace::span("codec.zfp.decompress");
        if format::is_v2(stream) {
            let hdr = parse_header_v2(stream)?;
            // Allocation is safe: `parse_header_v2` bounded `n` by the
            // per-stream 2-bits-per-block minimum.
            let mut out = vec![0.0f32; hdr.n];
            decompress_v2_into(stream, &hdr, &mut out)?;
            return Ok(out);
        }
        let n = parse_header(stream)?;
        let mut out = vec![0.0f32; n];
        decode_into_slice(&stream[8..], &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        _scratch: &mut crate::scratch::CodecScratch,
    ) -> Result<(), CompressError> {
        if format::is_v2(stream) {
            let hdr = parse_header_v2(stream)?;
            if hdr.n != out.len() {
                return Err(CompressError::CorruptStream(format!(
                    "stream declares {} values, expected {}",
                    hdr.n,
                    out.len()
                )));
            }
            return decompress_v2_into(stream, &hdr, out);
        }
        let n = parse_header(stream)?;
        if n != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {}",
                out.len()
            )));
        }
        decode_into_slice(&stream[8..], out)
    }
}

/// Encodes `data` into the v2 interleaved container: blocks are split
/// evenly into [`V2_STREAMS`] contiguous runs, each encoded into its own
/// bit stream so decode lanes carry independent dependency chains.
fn compress_v2(data: &[f32], budget: f64) -> Vec<u8> {
    let n_blocks = data.len().div_ceil(4);
    let parts = format::split_even(n_blocks, V2_STREAMS);
    let mut payloads: Vec<Vec<u8>> = Vec::with_capacity(parts.len());
    for &(block_off, block_len) in &parts {
        let mut w = BitWriter::new();
        let v0 = (block_off * 4).min(data.len());
        let v1 = ((block_off + block_len) * 4).min(data.len());
        for chunk in data[v0..v1].chunks(4) {
            encode_block(chunk, budget, &mut w);
        }
        payloads.push(w.into_bytes());
    }
    let total: usize = payloads.iter().map(|p| p.len()).sum();
    let mut out = Vec::with_capacity(18 + 8 * payloads.len() + total);
    format::write_preamble(&mut out, BackendTag::Zfp, V2_STREAMS);
    out.extend_from_slice(&(data.len() as u64).to_le_bytes());
    for p in &payloads {
        out.extend_from_slice(&(p.len() as u64).to_le_bytes());
    }
    for p in &payloads {
        out.extend_from_slice(p);
    }
    out
}

/// Parsed v2 container header.
struct V2Header {
    /// Declared element count.
    n: usize,
    /// `(byte offset, byte length)` of each sub-stream within the payload
    /// region.
    payloads: Vec<(usize, usize)>,
    /// Byte offset of the payload region within the stream.
    payload_off: usize,
}

/// Parses and validates the v2 header.  The declared sub-stream lengths
/// must sum to **exactly** the remaining payload bytes — a mismatch is a
/// typed [`CompressError::CorruptStream`], never a silent truncation — and
/// each sub-stream must be able to hold its share of blocks at the 2-bit
/// minimum, which bounds `n` before any allocation.
fn parse_header_v2(stream: &[u8]) -> Result<V2Header, CompressError> {
    let mut pos = 0usize;
    let n_streams = format::read_preamble(stream, &mut pos, BackendTag::Zfp)?;
    let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
    let mut payloads = Vec::with_capacity(n_streams);
    let mut total = 0usize;
    for _ in 0..n_streams {
        let l = crate::traits::read_len_u64(stream, &mut pos, "sub-stream payload length")?;
        payloads.push((total, l));
        total = total.checked_add(l).ok_or_else(|| {
            CompressError::CorruptStream("sub-stream payload lengths overflow".into())
        })?;
    }
    if stream.len() - pos != total {
        return Err(CompressError::CorruptStream(format!(
            "v2 sub-stream lengths sum to {total} bytes but the payload holds {}",
            stream.len() - pos
        )));
    }
    let parts = format::split_even(n.div_ceil(4), n_streams);
    for (i, &(_, blocks)) in parts.iter().enumerate() {
        if blocks.saturating_mul(2) > payloads[i].1.saturating_mul(8) {
            return Err(CompressError::CorruptStream(format!(
                "sub-stream {i} declares {blocks} blocks but holds only {} bits",
                payloads[i].1.saturating_mul(8)
            )));
        }
    }
    Ok(V2Header {
        n,
        payloads,
        payload_off: pos,
    })
}

/// Decodes a v2 container into `out` (already sized to `hdr.n`): one
/// decode lane per sub-stream, through the AVX2 block kernel when the host
/// supports it.
fn decompress_v2_into(stream: &[u8], hdr: &V2Header, out: &mut [f32]) -> Result<(), CompressError> {
    let payload = &stream[hdr.payload_off..];
    let parts = format::split_even(out.len().div_ceil(4), hdr.payloads.len());
    errflow_obs::counter("codec.decode.streams.zfp").add(hdr.payloads.len() as u64);
    #[cfg(target_arch = "x86_64")]
    if hdr.payloads.len() == 4
        && errflow_tensor::simd::has_avx2()
        && !errflow_tensor::simd::force_scalar()
    {
        return crate::zfp_simd::decode_v2_avx2(payload, &hdr.payloads, &parts, out);
    }
    decompress_v2_scalar(payload, &hdr.payloads, &parts, out)
}

/// Portable v2 decode: each sub-stream through the serial block decoder.
/// This is the non-AVX2 fallback, and the parity baseline the kernel is
/// tested against.
fn decompress_v2_scalar(
    payload: &[u8],
    payloads: &[(usize, usize)],
    parts: &[(usize, usize)],
    out: &mut [f32],
) -> Result<(), CompressError> {
    for (&(block_off, block_len), &(poff, plen)) in parts.iter().zip(payloads) {
        let sub = &payload[poff..poff + plen];
        let v0 = (block_off * 4).min(out.len());
        let v1 = ((block_off + block_len) * 4).min(out.len());
        decode_into_slice(sub, &mut out[v0..v1])?;
    }
    Ok(())
}

/// Upper bound on the bits one encoded block can occupy: flag + emax(10) +
/// cut(6) + width(6) + 4 × (sign + 63-bit magnitude).  Used to decide when
/// the unchecked decode path is safe for a whole block at once.
pub(crate) const MAX_BLOCK_BITS: usize = 1 + 10 + 6 + 6 + 4 * (1 + 63);

/// Parses and validates the stream header, returning the element count.
///
/// The declared count is validated against the payload size *before* any
/// allocation: every block consumes at least 2 bits (the zero-block case),
/// so a stream whose payload cannot cover `⌈n/4⌉` blocks is rejected here
/// instead of erroring mid-decode — and `n` is thereby bounded by 16× the
/// stream size, making `vec![0.0; n]` safe.
fn parse_header(stream: &[u8]) -> Result<usize, CompressError> {
    let mut pos = 0usize;
    let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
    let payload_bits = (stream.len() - 8).saturating_mul(8);
    let min_bits = n.div_ceil(4).saturating_mul(2);
    if min_bits > payload_bits {
        return Err(CompressError::CorruptStream(format!(
            "declared {n} values but payload holds only {payload_bits} bits"
        )));
    }
    Ok(n)
}

/// Decodes the block payload straight into `out`, 4 values per block, with
/// no per-block allocations.  Blocks whose worst-case footprint fits the
/// remaining stream take the unchecked bit-read fast path (bounds verified
/// once per block); only the last few blocks pay per-read checks.
fn decode_into_slice(payload: &[u8], out: &mut [f32]) -> Result<(), CompressError> {
    let mut r = BitReader::new(payload);
    decode_blocks_scalar(&mut r, out)
}

/// Scalar block-decode loop, resumable from any block boundary — the v1
/// decode path in full, and the per-lane tail of the v2 AVX2 kernel.
pub(crate) fn decode_blocks_scalar(
    r: &mut BitReader<'_>,
    out: &mut [f32],
) -> Result<(), CompressError> {
    for chunk in out.chunks_mut(4) {
        if r.remaining_bits() >= MAX_BLOCK_BITS {
            // SAFETY: (contract, not UB) the unchecked reader requires the
            // whole worst-case block footprint in-bounds, guaranteed by the
            // `remaining_bits()` guard above (and re-asserted inside).
            decode_block_unchecked(r, chunk);
        } else {
            let block = decode_block(r)?;
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }
    Ok(())
}

fn encode_block(values: &[f32], budget: f64, w: &mut BitWriter) {
    debug_assert!(!values.is_empty() && values.len() <= 4);
    // Pad short tail blocks by repeating the last value (cheap to code).
    let mut block = [0.0f32; 4];
    let pad = values.last().copied().unwrap_or(0.0);
    #[allow(clippy::needless_range_loop)] // pads the tail from `values`
    for i in 0..4 {
        block[i] = *values.get(i).unwrap_or(&pad);
    }
    let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        // Zero / non-finite blocks: flag + verbatim fallback for non-finite.
        if max_abs == 0.0 {
            w.write_bit(true); // zero-block flag
            w.write_bit(false);
            return;
        }
        w.write_bit(true);
        w.write_bit(true); // verbatim escape
        for v in block {
            w.write_bits(v.to_bits() as u64, 32);
        }
        return;
    }
    w.write_bit(false);

    let emax = (max_abs as f64).log2().floor() as i32;
    let scale = 2f64.powi(emax - (PRECISION - 2));
    let mut ints = [0i64; 4];
    for (i, &v) in block.iter().enumerate() {
        ints[i] = (v as f64 / scale).round() as i64;
    }
    fwd_transform(&mut ints);

    // Pick the largest truncation that keeps the worst-case reconstruction
    // error within budget: int error ≤ 2^(cut+1) + 3 (transform gain 4 on a
    // half-step coefficient error, plus lifting-rounding slack).
    let max_cut = 62;
    let mut cut: u32 = 0;
    if budget / scale > 5.0 {
        cut = (((budget / scale - 3.0) / 2.0).log2().floor() as i64).clamp(0, max_cut) as u32;
    }
    // Truncate toward zero on magnitude (arithmetic shift floors negatives,
    // so work in sign-magnitude).
    let kept: [i64; 4] = std::array::from_fn(|i| {
        let v = ints[i];
        let mag = v.unsigned_abs() >> cut;
        if v < 0 {
            -(mag as i64)
        } else {
            mag as i64
        }
    });

    let width = kept
        .iter()
        .map(|&k| 64 - k.unsigned_abs().leading_zeros())
        .max()
        .unwrap_or(0);
    w.write_bits((emax + 256) as u64, 10);
    w.write_bits(cut as u64, 6);
    w.write_bits(width as u64, 6);
    for &k in &kept {
        w.write_bit(k < 0);
        w.write_bits(k.unsigned_abs(), width);
    }
}

fn decode_block(r: &mut BitReader<'_>) -> Result<[f32; 4], CompressError> {
    let flag = r
        .read_bit()
        .ok_or_else(|| CompressError::CorruptStream("missing block flag".into()))?;
    if flag {
        let verbatim = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("missing escape flag".into()))?;
        if !verbatim {
            return Ok([0.0; 4]);
        }
        let mut out = [0.0f32; 4];
        for o in &mut out {
            let bits = r
                .read_bits(32)
                .ok_or_else(|| CompressError::CorruptStream("truncated verbatim block".into()))?;
            *o = f32::from_bits(bits as u32);
        }
        return Ok(out);
    }
    let emax =
        r.read_bits(10)
            .ok_or_else(|| CompressError::CorruptStream("truncated emax".into()))? as i32
            - 256;
    let cut = r
        .read_bits(6)
        .ok_or_else(|| CompressError::CorruptStream("truncated cut".into()))? as u32;
    let width =
        r.read_bits(6)
            .ok_or_else(|| CompressError::CorruptStream("truncated width".into()))? as u32;
    let mut ints = [0i64; 4];
    for v in &mut ints {
        let neg = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("truncated sign".into()))?;
        let mag = r
            .read_bits(width)
            .ok_or_else(|| CompressError::CorruptStream("truncated magnitude".into()))?
            as i64;
        // Midpoint reconstruction of the truncated low bits (wrapping:
        // corrupt streams can declare absurd cut/width combinations).
        let mut val = mag.wrapping_shl(cut);
        if cut > 0 && mag != 0 {
            val = val.wrapping_add(1i64.wrapping_shl(cut - 1));
        }
        *v = if neg { val.wrapping_neg() } else { val };
    }
    inv_transform(&mut ints);
    let scale = pow2(emax - (PRECISION - 2));
    Ok(std::array::from_fn(|i| (ints[i] as f64 * scale) as f32))
}

/// A block read off the bit stream but not yet reconstructed — the split
/// point between the (inherently serial) bit reads and the transform/scale
/// stage the AVX2 kernel vectorizes across four lanes.
pub(crate) enum BlockRaw {
    /// Zero-block flag: all four values are 0.0.
    Zero,
    /// Verbatim escape (non-finite values): raw IEEE bits.
    Verbatim([f32; 4]),
    /// Regular block: untransformed coefficients and the block exponent.
    Normal {
        /// Coefficients after midpoint reconstruction, pre-inverse-transform.
        ints: [i64; 4],
        /// Block exponent (`emax`).
        emax: i32,
    },
}

/// [`decode_block`]'s read stage without per-read end-of-stream checks.
/// Caller must have verified the stream holds at least [`MAX_BLOCK_BITS`]
/// more bits; the bit cursor then advances exactly as the checked path
/// would.
#[inline]
pub(crate) fn read_block_raw_unchecked(r: &mut BitReader<'_>) -> BlockRaw {
    debug_assert!(r.remaining_bits() >= MAX_BLOCK_BITS);
    // The whole header — flag(1) [+ escape(1)] or flag(1) + emax(10) +
    // cut(6) + width(6) — fits one 57-bit window, so it costs a single
    // load instead of four dependent read rounds.
    let w = r.peek_word();
    if w & 1 == 1 {
        r.advance_unchecked(2);
        if w & 2 == 0 {
            return BlockRaw::Zero;
        }
        let mut vals = [0.0f32; 4];
        for v in &mut vals {
            *v = f32::from_bits(r.read_bits_unchecked(32) as u32);
        }
        return BlockRaw::Verbatim(vals);
    }
    let emax = ((w >> 1) & 0x3FF) as i32 - 256;
    let cut = ((w >> 11) & 0x3F) as u32;
    let width = ((w >> 17) & 0x3F) as u32;
    r.advance_unchecked(23);
    let mut ints = [0i64; 4];
    if width <= 56 {
        // Fast path: sign + magnitude (≤ 57 bits together) come out of one
        // window per coefficient, and the cursor advances by a
        // block-constant stride, so the four loads pipeline.
        let mask = if width == 0 { 0 } else { (1u64 << width) - 1 };
        for v in &mut ints {
            let cw = r.peek_word();
            r.advance_unchecked(1 + width as usize);
            *v = reconstruct_coeff((cw >> 1) & mask, cut, cw & 1 == 1);
        }
    } else {
        for v in &mut ints {
            let neg = r.read_bits_unchecked(1) == 1;
            let raw: u64 = if width <= 57 {
                r.read_bits_unchecked(width)
            } else {
                // 58..=63-bit magnitudes split across two register loads.
                let lo = r.read_bits_unchecked(57);
                lo | (r.read_bits_unchecked(width - 57) << 57)
            };
            *v = reconstruct_coeff(raw, cut, neg);
        }
    }
    BlockRaw::Normal { ints, emax }
}

/// `2^e` by direct exponent-bit construction — `powi` is a library call,
/// far too slow for the per-block decode hot path.  The block exponent is
/// 10 bits (`emax ∈ [-256, 767]`), so `e = emax - 36` always lands in the
/// normal-f64 range and the result is exactly `2f64.powi(e)`.
#[inline]
pub(crate) fn pow2(e: i32) -> f64 {
    debug_assert!((-1022..=1023).contains(&e));
    f64::from_bits(((e + 1023) as u64) << 52)
}

/// Midpoint reconstruction of the truncated low bits (wrapping: corrupt
/// streams can declare absurd cut/width combinations).
#[inline]
pub(crate) fn reconstruct_coeff(raw: u64, cut: u32, neg: bool) -> i64 {
    let mag = raw as i64;
    let mut val = mag.wrapping_shl(cut);
    if cut > 0 && mag != 0 {
        val = val.wrapping_add(1i64.wrapping_shl(cut - 1));
    }
    if neg {
        val.wrapping_neg()
    } else {
        val
    }
}

/// Scalar reconstruction stage: inverse transform + scale (or the trivial
/// zero/verbatim fills) into `out` (`1..=4` values).
pub(crate) fn finish_block_scalar(raw: &BlockRaw, out: &mut [f32]) {
    match raw {
        BlockRaw::Zero => out.fill(0.0),
        BlockRaw::Verbatim(vals) => out.copy_from_slice(&vals[..out.len()]),
        BlockRaw::Normal { ints, emax } => {
            let mut p = *ints;
            inv_transform(&mut p);
            let scale = pow2(emax - (PRECISION - 2));
            for (slot, &i) in out.iter_mut().zip(p.iter()) {
                *slot = (i as f64 * scale) as f32;
            }
        }
    }
}

/// [`decode_block`] without per-read end-of-stream checks, writing straight
/// into `out` (`1..=4` values).  Caller must have verified the stream holds
/// at least [`MAX_BLOCK_BITS`] more bits; decoding is then infallible and
/// the bit cursor advances exactly as the checked path would.
fn decode_block_unchecked(r: &mut BitReader<'_>, out: &mut [f32]) {
    debug_assert!(!out.is_empty() && out.len() <= 4);
    let raw = read_block_raw_unchecked(r);
    finish_block_scalar(&raw, out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn smooth_field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                (t * 9.0).sin() * 2.0 + 0.2 * (t * 55.0).cos()
            })
            .collect()
    }

    #[test]
    fn transform_is_exactly_reversible() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let orig: [i64; 4] = std::array::from_fn(|_| rng.gen_range(-(1 << 36)..(1 << 36)));
            let mut p = orig;
            fwd_transform(&mut p);
            inv_transform(&mut p);
            assert_eq!(p, orig);
        }
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = smooth_field(4096);
        let zfp = ZfpCompressor::new();
        for tol in [1e-1, 1e-3, 1e-5, 1e-7] {
            let bound = ErrorBound::abs_linf(tol);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert!(bound.verify(&data, &recon), "tol={tol}");
        }
    }

    #[test]
    fn rel_linf_roundtrip() {
        let data = smooth_field(1024);
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::rel_linf(1e-4);
        let recon = zfp
            .decompress(&zfp.compress(&data, &bound).unwrap())
            .unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn l2_bound_rejected() {
        let zfp = ZfpCompressor::new();
        assert!(!zfp.supports(&ErrorBound::abs_l2(1e-3)));
        assert!(matches!(
            zfp.compress(&[1.0, 2.0], &ErrorBound::abs_l2(1e-3)),
            Err(CompressError::UnsupportedBound { backend: "zfp", .. })
        ));
    }

    #[test]
    fn ratio_grows_with_tolerance() {
        let data = smooth_field(8192);
        let zfp = ZfpCompressor::new();
        let len_at = |tol: f64| {
            zfp.compress(&data, &ErrorBound::abs_linf(tol))
                .unwrap()
                .len()
        };
        assert!(len_at(1e-1) < len_at(1e-4));
        assert!(len_at(1e-4) < len_at(1e-7));
    }

    #[test]
    fn zero_blocks_are_tiny() {
        let data = vec![0.0f32; 4096];
        let zfp = ZfpCompressor::new();
        let stream = zfp.compress(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
        // 2 bits per 4-value block + header.
        assert!(stream.len() < 8 + 4096 / 4, "len={}", stream.len());
        let recon = zfp.decompress(&stream).unwrap();
        assert!(recon.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mixed_magnitudes_bounded() {
        let mut data = smooth_field(512);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 17 == 0 {
                *v *= 1e6;
            }
            if i % 23 == 0 {
                *v *= 1e-6;
            }
        }
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::abs_linf(1e-2);
        let recon = zfp
            .decompress(&zfp.compress(&data, &bound).unwrap())
            .unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::abs_linf(1e-4);
        for n in [1usize, 2, 3, 5, 7, 1023] {
            let data = smooth_field(n);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert_eq!(recon.len(), n);
            assert!(bound.verify(&data, &recon), "n={n}");
        }
    }

    #[test]
    fn empty_input() {
        let zfp = ZfpCompressor::new();
        let stream = zfp.compress(&[], &ErrorBound::abs_linf(1e-3)).unwrap();
        assert!(zfp.decompress(&stream).unwrap().is_empty());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let zfp = ZfpCompressor::new();
        assert!(zfp.decompress(&[0]).is_err());
        let stream = zfp
            .compress(&smooth_field(64), &ErrorBound::abs_linf(1e-5))
            .unwrap();
        assert!(zfp.decompress(&stream[..9]).is_err());
    }

    #[test]
    fn prop_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0x2F0);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-7.0f64..-1.0));
            let n = rng.gen_range(1usize..300);
            let data: Vec<f32> = (0..n)
                .map(|i| ((i as f32) * 0.07).sin() * 3.0 + rng.gen_range(-0.5f32..0.5))
                .collect();
            let zfp = ZfpCompressor::new();
            let bound = ErrorBound::abs_linf(tol);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }

    #[test]
    fn prop_haar_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x2F1);
        for _ in 0..256 {
            let a = rng.gen_range(-(1i64 << 40)..(1i64 << 40));
            let b = rng.gen_range(-(1i64 << 40)..(1i64 << 40));
            let (l, h) = haar_fwd(a, b);
            let (a2, b2) = haar_inv(l, h);
            assert_eq!((a, b), (a2, b2));
        }
    }

    /// The AVX2 kernel must reconstruct bit-identically to the portable
    /// scalar lane decode, across tolerances wide enough to exercise every
    /// coefficient-width path (one-window, two-window, and the general
    /// fallback) plus zero blocks and ragged tails.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn prop_v2_avx2_kernel_matches_scalar() {
        if !errflow_tensor::simd::has_avx2() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0x2F2);
        for round in 0..48 {
            let n = rng.gen_range(1usize..3000);
            let tol = 10f64.powf(rng.gen_range(-9.0f64..-1.0));
            let mut data: Vec<f32> = (0..n)
                .map(|i| ((i as f32) * 0.05).sin() * 20.0 + rng.gen_range(-1.0f32..1.0))
                .collect();
            if round % 3 == 0 {
                // Zero runs force zero-block rounds into the kernel.
                for v in data.iter_mut().take(n / 2) {
                    *v = 0.0;
                }
            }
            if round % 7 == 0 {
                // Non-finite values force verbatim-escape blocks.
                let at = rng.gen_range(0..n);
                data[at] = f32::NAN;
            }
            let stream = compress_v2(&data, tol);
            let hdr = parse_header_v2(&stream).unwrap();
            let payload = &stream[hdr.payload_off..];
            let parts = format::split_even(n.div_ceil(4), hdr.payloads.len());
            let mut scalar = vec![0.0f32; n];
            decompress_v2_scalar(payload, &hdr.payloads, &parts, &mut scalar).unwrap();
            let mut simd = vec![0.0f32; n];
            crate::zfp_simd::decode_v2_avx2(payload, &hdr.payloads, &parts, &mut simd).unwrap();
            for (i, (a, b)) in scalar.iter().zip(&simd).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "n={n} tol={tol:e}: kernel diverges at index {i}"
                );
            }
        }
    }
}
