//! ZFP-class fixed-accuracy compressor.
//!
//! ZFP (the paper's reference \[7\]) compresses floating-point arrays in
//! fixed-size blocks: each block is aligned to a common exponent, converted
//! to integers, passed through a reversible decorrelating transform, and
//! its coefficients are truncated to exactly the precision the accuracy
//! target requires.  Because every step is local to a 4-value block, the
//! codec is branch-light and fast in both directions — which is why the
//! paper observes ZFP's I/O throughput staying flat across tolerance levels
//! (Fig. 7) while SZ/MGARD dip.
//!
//! This implementation uses the exactly-reversible integer S-transform
//! (two-level Haar lifting) as the decorrelator and sign-magnitude storage
//! of precision-truncated coefficients.  Like real ZFP, it supports
//! **pointwise (L∞) tolerances only** — requesting an L2 bound returns
//! [`CompressError::UnsupportedBound`], matching the restriction the paper
//! notes for Figs. 8, 12 and 14.

use crate::bitstream::{BitReader, BitWriter};
use crate::error_bound::ErrorBound;
use crate::traits::{check_tolerance, CompressError, Compressor};

/// Working integer precision (bits of the normalised significand).
const PRECISION: i32 = 38;

/// ZFP-class compressor (see module docs).
#[derive(Debug, Clone, Default)]
pub struct ZfpCompressor;

impl ZfpCompressor {
    /// Creates the compressor with default settings.
    pub fn new() -> Self {
        ZfpCompressor
    }
}

/// Forward reversible S-transform on a 4-value block (two Haar levels).
fn fwd_transform(p: &mut [i64; 4]) {
    let (l0, h0) = haar_fwd(p[0], p[1]);
    let (l1, h1) = haar_fwd(p[2], p[3]);
    let (ll, lh) = haar_fwd(l0, l1);
    *p = [ll, lh, h0, h1];
}

/// Exact inverse of [`fwd_transform`].
fn inv_transform(p: &mut [i64; 4]) {
    let [ll, lh, h0, h1] = *p;
    let (l0, l1) = haar_inv(ll, lh);
    let (a, b) = haar_inv(l0, h0);
    let (c, d) = haar_inv(l1, h1);
    *p = [a, b, c, d];
}

/// Reversible Haar pair: `l = ⌊(a+b)/2⌋`, `h = a − b`.
///
/// Wrapping arithmetic: valid streams never overflow (coefficients stay
/// within PRECISION+2 bits), but *corrupt* streams can decode arbitrary
/// 63-bit magnitudes, and decompression must stay panic-free on them.
#[inline]
fn haar_fwd(a: i64, b: i64) -> (i64, i64) {
    (a.wrapping_add(b) >> 1, a.wrapping_sub(b))
}

/// Exact inverse of [`haar_fwd`] (same wrapping rationale).
#[inline]
fn haar_inv(l: i64, h: i64) -> (i64, i64) {
    let a = l.wrapping_add(h.wrapping_add(1) >> 1);
    (a, a.wrapping_sub(h))
}

impl Compressor for ZfpCompressor {
    fn name(&self) -> &'static str {
        "zfp"
    }

    fn supports(&self, bound: &ErrorBound) -> bool {
        !bound.mode.is_l2()
    }

    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
        let _span = errflow_obs::trace::span("codec.zfp.compress");
        check_tolerance(bound.tolerance)?;
        if bound.mode.is_l2() {
            return Err(CompressError::UnsupportedBound {
                backend: "zfp",
                reason: "ZFP supports pointwise (L-infinity) tolerances only".into(),
            });
        }
        let budget = bound.pointwise_budget(data);
        let mut w = BitWriter::new();
        for chunk in data.chunks(4) {
            encode_block(chunk, budget, &mut w);
        }
        let payload = w.into_bytes();
        let mut out = Vec::with_capacity(payload.len() + 8);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        Ok(out)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
        let _span = errflow_obs::trace::span("codec.zfp.decompress");
        let n = parse_header(stream)?;
        let mut out = vec![0.0f32; n];
        decode_into_slice(&stream[8..], &mut out)?;
        Ok(out)
    }

    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        _scratch: &mut crate::scratch::CodecScratch,
    ) -> Result<(), CompressError> {
        let n = parse_header(stream)?;
        if n != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {}",
                out.len()
            )));
        }
        decode_into_slice(&stream[8..], out)
    }
}

/// Upper bound on the bits one encoded block can occupy: flag + emax(10) +
/// cut(6) + width(6) + 4 × (sign + 63-bit magnitude).  Used to decide when
/// the unchecked decode path is safe for a whole block at once.
const MAX_BLOCK_BITS: usize = 1 + 10 + 6 + 6 + 4 * (1 + 63);

/// Parses and validates the stream header, returning the element count.
///
/// The declared count is validated against the payload size *before* any
/// allocation: every block consumes at least 2 bits (the zero-block case),
/// so a stream whose payload cannot cover `⌈n/4⌉` blocks is rejected here
/// instead of erroring mid-decode — and `n` is thereby bounded by 16× the
/// stream size, making `vec![0.0; n]` safe.
fn parse_header(stream: &[u8]) -> Result<usize, CompressError> {
    let mut pos = 0usize;
    let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
    let payload_bits = (stream.len() - 8).saturating_mul(8);
    let min_bits = n.div_ceil(4).saturating_mul(2);
    if min_bits > payload_bits {
        return Err(CompressError::CorruptStream(format!(
            "declared {n} values but payload holds only {payload_bits} bits"
        )));
    }
    Ok(n)
}

/// Decodes the block payload straight into `out`, 4 values per block, with
/// no per-block allocations.  Blocks whose worst-case footprint fits the
/// remaining stream take the unchecked bit-read fast path (bounds verified
/// once per block); only the last few blocks pay per-read checks.
fn decode_into_slice(payload: &[u8], out: &mut [f32]) -> Result<(), CompressError> {
    let mut r = BitReader::new(payload);
    for chunk in out.chunks_mut(4) {
        if r.remaining_bits() >= MAX_BLOCK_BITS {
            // SAFETY: (contract, not UB) the unchecked reader requires the
            // whole worst-case block footprint in-bounds, guaranteed by the
            // `remaining_bits()` guard above (and re-asserted inside).
            decode_block_unchecked(&mut r, chunk);
        } else {
            let block = decode_block(&mut r)?;
            chunk.copy_from_slice(&block[..chunk.len()]);
        }
    }
    Ok(())
}

fn encode_block(values: &[f32], budget: f64, w: &mut BitWriter) {
    debug_assert!(!values.is_empty() && values.len() <= 4);
    // Pad short tail blocks by repeating the last value (cheap to code).
    let mut block = [0.0f32; 4];
    let pad = values.last().copied().unwrap_or(0.0);
    #[allow(clippy::needless_range_loop)] // pads the tail from `values`
    for i in 0..4 {
        block[i] = *values.get(i).unwrap_or(&pad);
    }
    let max_abs = block.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
    if max_abs == 0.0 || !max_abs.is_finite() {
        // Zero / non-finite blocks: flag + verbatim fallback for non-finite.
        if max_abs == 0.0 {
            w.write_bit(true); // zero-block flag
            w.write_bit(false);
            return;
        }
        w.write_bit(true);
        w.write_bit(true); // verbatim escape
        for v in block {
            w.write_bits(v.to_bits() as u64, 32);
        }
        return;
    }
    w.write_bit(false);

    let emax = (max_abs as f64).log2().floor() as i32;
    let scale = 2f64.powi(emax - (PRECISION - 2));
    let mut ints = [0i64; 4];
    for (i, &v) in block.iter().enumerate() {
        ints[i] = (v as f64 / scale).round() as i64;
    }
    fwd_transform(&mut ints);

    // Pick the largest truncation that keeps the worst-case reconstruction
    // error within budget: int error ≤ 2^(cut+1) + 3 (transform gain 4 on a
    // half-step coefficient error, plus lifting-rounding slack).
    let max_cut = 62;
    let mut cut: u32 = 0;
    if budget / scale > 5.0 {
        cut = (((budget / scale - 3.0) / 2.0).log2().floor() as i64).clamp(0, max_cut) as u32;
    }
    // Truncate toward zero on magnitude (arithmetic shift floors negatives,
    // so work in sign-magnitude).
    let kept: [i64; 4] = std::array::from_fn(|i| {
        let v = ints[i];
        let mag = v.unsigned_abs() >> cut;
        if v < 0 {
            -(mag as i64)
        } else {
            mag as i64
        }
    });

    let width = kept
        .iter()
        .map(|&k| 64 - k.unsigned_abs().leading_zeros())
        .max()
        .unwrap_or(0);
    w.write_bits((emax + 256) as u64, 10);
    w.write_bits(cut as u64, 6);
    w.write_bits(width as u64, 6);
    for &k in &kept {
        w.write_bit(k < 0);
        w.write_bits(k.unsigned_abs(), width);
    }
}

fn decode_block(r: &mut BitReader<'_>) -> Result<[f32; 4], CompressError> {
    let flag = r
        .read_bit()
        .ok_or_else(|| CompressError::CorruptStream("missing block flag".into()))?;
    if flag {
        let verbatim = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("missing escape flag".into()))?;
        if !verbatim {
            return Ok([0.0; 4]);
        }
        let mut out = [0.0f32; 4];
        for o in &mut out {
            let bits = r
                .read_bits(32)
                .ok_or_else(|| CompressError::CorruptStream("truncated verbatim block".into()))?;
            *o = f32::from_bits(bits as u32);
        }
        return Ok(out);
    }
    let emax =
        r.read_bits(10)
            .ok_or_else(|| CompressError::CorruptStream("truncated emax".into()))? as i32
            - 256;
    let cut = r
        .read_bits(6)
        .ok_or_else(|| CompressError::CorruptStream("truncated cut".into()))? as u32;
    let width =
        r.read_bits(6)
            .ok_or_else(|| CompressError::CorruptStream("truncated width".into()))? as u32;
    let mut ints = [0i64; 4];
    for v in &mut ints {
        let neg = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("truncated sign".into()))?;
        let mag = r
            .read_bits(width)
            .ok_or_else(|| CompressError::CorruptStream("truncated magnitude".into()))?
            as i64;
        // Midpoint reconstruction of the truncated low bits (wrapping:
        // corrupt streams can declare absurd cut/width combinations).
        let mut val = mag.wrapping_shl(cut);
        if cut > 0 && mag != 0 {
            val = val.wrapping_add(1i64.wrapping_shl(cut - 1));
        }
        *v = if neg { val.wrapping_neg() } else { val };
    }
    inv_transform(&mut ints);
    let scale = 2f64.powi(emax - (PRECISION - 2));
    Ok(std::array::from_fn(|i| (ints[i] as f64 * scale) as f32))
}

/// [`decode_block`] without per-read end-of-stream checks, writing straight
/// into `out` (`1..=4` values).  Caller must have verified the stream holds
/// at least [`MAX_BLOCK_BITS`] more bits; decoding is then infallible and
/// the bit cursor advances exactly as the checked path would.
fn decode_block_unchecked(r: &mut BitReader<'_>, out: &mut [f32]) {
    debug_assert!(r.remaining_bits() >= MAX_BLOCK_BITS);
    debug_assert!(!out.is_empty() && out.len() <= 4);
    if r.read_bits_unchecked(1) == 1 {
        if r.read_bits_unchecked(1) == 0 {
            out.fill(0.0);
            return;
        }
        let mut vals = [0.0f32; 4];
        for v in &mut vals {
            *v = f32::from_bits(r.read_bits_unchecked(32) as u32);
        }
        out.copy_from_slice(&vals[..out.len()]);
        return;
    }
    let emax = r.read_bits_unchecked(10) as i32 - 256;
    let cut = r.read_bits_unchecked(6) as u32;
    let width = r.read_bits_unchecked(6) as u32;
    let mut ints = [0i64; 4];
    for v in &mut ints {
        let neg = r.read_bits_unchecked(1) == 1;
        let raw: u64 = if width == 0 {
            0
        } else if width <= 57 {
            r.read_bits_unchecked(width)
        } else {
            // 58..=63-bit magnitudes split across two register loads.
            let lo = r.read_bits_unchecked(57);
            lo | (r.read_bits_unchecked(width - 57) << 57)
        };
        let mag = raw as i64;
        // Midpoint reconstruction of the truncated low bits (wrapping:
        // corrupt streams can declare absurd cut/width combinations).
        let mut val = mag.wrapping_shl(cut);
        if cut > 0 && mag != 0 {
            val = val.wrapping_add(1i64.wrapping_shl(cut - 1));
        }
        *v = if neg { val.wrapping_neg() } else { val };
    }
    inv_transform(&mut ints);
    let scale = 2f64.powi(emax - (PRECISION - 2));
    for (slot, &i) in out.iter_mut().zip(ints.iter()) {
        *slot = (i as f64 * scale) as f32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn smooth_field(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                (t * 9.0).sin() * 2.0 + 0.2 * (t * 55.0).cos()
            })
            .collect()
    }

    #[test]
    fn transform_is_exactly_reversible() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let orig: [i64; 4] = std::array::from_fn(|_| rng.gen_range(-(1 << 36)..(1 << 36)));
            let mut p = orig;
            fwd_transform(&mut p);
            inv_transform(&mut p);
            assert_eq!(p, orig);
        }
    }

    #[test]
    fn roundtrip_respects_bound() {
        let data = smooth_field(4096);
        let zfp = ZfpCompressor::new();
        for tol in [1e-1, 1e-3, 1e-5, 1e-7] {
            let bound = ErrorBound::abs_linf(tol);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert!(bound.verify(&data, &recon), "tol={tol}");
        }
    }

    #[test]
    fn rel_linf_roundtrip() {
        let data = smooth_field(1024);
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::rel_linf(1e-4);
        let recon = zfp
            .decompress(&zfp.compress(&data, &bound).unwrap())
            .unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn l2_bound_rejected() {
        let zfp = ZfpCompressor::new();
        assert!(!zfp.supports(&ErrorBound::abs_l2(1e-3)));
        assert!(matches!(
            zfp.compress(&[1.0, 2.0], &ErrorBound::abs_l2(1e-3)),
            Err(CompressError::UnsupportedBound { backend: "zfp", .. })
        ));
    }

    #[test]
    fn ratio_grows_with_tolerance() {
        let data = smooth_field(8192);
        let zfp = ZfpCompressor::new();
        let len_at = |tol: f64| {
            zfp.compress(&data, &ErrorBound::abs_linf(tol))
                .unwrap()
                .len()
        };
        assert!(len_at(1e-1) < len_at(1e-4));
        assert!(len_at(1e-4) < len_at(1e-7));
    }

    #[test]
    fn zero_blocks_are_tiny() {
        let data = vec![0.0f32; 4096];
        let zfp = ZfpCompressor::new();
        let stream = zfp.compress(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
        // 2 bits per 4-value block + header.
        assert!(stream.len() < 8 + 4096 / 4, "len={}", stream.len());
        let recon = zfp.decompress(&stream).unwrap();
        assert!(recon.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn mixed_magnitudes_bounded() {
        let mut data = smooth_field(512);
        for (i, v) in data.iter_mut().enumerate() {
            if i % 17 == 0 {
                *v *= 1e6;
            }
            if i % 23 == 0 {
                *v *= 1e-6;
            }
        }
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::abs_linf(1e-2);
        let recon = zfp
            .decompress(&zfp.compress(&data, &bound).unwrap())
            .unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn non_multiple_of_four_lengths() {
        let zfp = ZfpCompressor::new();
        let bound = ErrorBound::abs_linf(1e-4);
        for n in [1usize, 2, 3, 5, 7, 1023] {
            let data = smooth_field(n);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert_eq!(recon.len(), n);
            assert!(bound.verify(&data, &recon), "n={n}");
        }
    }

    #[test]
    fn empty_input() {
        let zfp = ZfpCompressor::new();
        let stream = zfp.compress(&[], &ErrorBound::abs_linf(1e-3)).unwrap();
        assert!(zfp.decompress(&stream).unwrap().is_empty());
    }

    #[test]
    fn corrupt_stream_rejected() {
        let zfp = ZfpCompressor::new();
        assert!(zfp.decompress(&[0]).is_err());
        let stream = zfp
            .compress(&smooth_field(64), &ErrorBound::abs_linf(1e-5))
            .unwrap();
        assert!(zfp.decompress(&stream[..9]).is_err());
    }

    #[test]
    fn prop_error_bound_holds() {
        let mut rng = StdRng::seed_from_u64(0x2F0);
        for _ in 0..64 {
            let tol = 10f64.powf(rng.gen_range(-7.0f64..-1.0));
            let n = rng.gen_range(1usize..300);
            let data: Vec<f32> = (0..n)
                .map(|i| ((i as f32) * 0.07).sin() * 3.0 + rng.gen_range(-0.5f32..0.5))
                .collect();
            let zfp = ZfpCompressor::new();
            let bound = ErrorBound::abs_linf(tol);
            let recon = zfp
                .decompress(&zfp.compress(&data, &bound).unwrap())
                .unwrap();
            assert!(bound.verify(&data, &recon));
        }
    }

    #[test]
    fn prop_haar_roundtrip() {
        let mut rng = StdRng::seed_from_u64(0x2F1);
        for _ in 0..256 {
            let a = rng.gen_range(-(1i64 << 40)..(1i64 << 40));
            let b = rng.gen_range(-(1i64 << 40)..(1i64 << 40));
            let (l, h) = haar_fwd(a, b);
            let (a2, b2) = haar_inv(l, h);
            assert_eq!((a, b), (a2, b2));
        }
    }
}
