//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ- and MGARD-class compressors turn most values into small quantization
//! codes with a highly skewed distribution; entropy coding those codes is
//! where their compression ratio comes from.  This is a self-contained
//! canonical Huffman coder: the stream stores `(symbol, code length)` pairs
//! and the payload; canonical code assignment makes decode tables cheap to
//! rebuild.
//!
//! Decoding is table-driven and **register-batched**: the decoder loads a
//! 57-bit window of the payload into a 64-bit register once, then decodes
//! as many symbols as fit (typically 4–10 for skewed alphabets) with one
//! table lookup + shift each before refilling.  A `2^13`-entry prefix table
//! resolves every code of ≤ 13 bits in one lookup (the common case by
//! construction of Huffman codes over skewed distributions); longer codes
//! fall back to a bit-by-bit canonical walk.  This path dominates
//! decompression throughput for the SZ/MGARD backends, which is what the
//! paper's I/O figures measure.
//!
//! Both directions carry reusable scratch state ([`DecodeScratch`],
//! [`EncodeScratch`]) so steady-state coding performs no per-call
//! `HashMap`/table allocations; the plain [`encode`]/[`decode`] entry
//! points reuse a thread-local scratch transparently.  The byte format is
//! identical to the pre-optimization coder (checked by the parity tests in
//! [`crate::reference`]).
//!
//! ## Multi-stream (v2) coding
//!
//! Serial Huffman decode is latency-bound: every symbol's table lookup
//! depends on the previous symbol's length, so one dependency chain caps
//! throughput regardless of ILP or SIMD width.  The multi-stream entry
//! points ([`encode_multi`], [`decode_multi_into`]) break that chain by
//! splitting the input into [`crate::format::V2_STREAMS`] contiguous
//! segments that share one code table but carry **independent payloads**:
//! the decoder runs one chain per sub-stream — four interleaved scalar
//! chains portably, or four gather-driven register lanes on AVX2 hosts
//! (see `huffman_simd`).  Runs are collapsed per segment, so a run never
//! straddles a sub-stream boundary.  This block format is the entropy
//! layer of the v2 container streams written by [`crate::SzCompressor`].

use crate::bitstream::{load_word, BitWriter};
use crate::traits::{read_len_u32, read_len_u64, read_u8, CompressError};
use std::cell::RefCell;
use std::collections::HashMap;

/// Width of the fast decode table (bits).
pub const PEEK: u32 = 13;

/// Marker symbol standing for "a run follows" after RLE.
pub const RUN_MARKER: u32 = u32::MAX;

/// Minimum repeat length worth collapsing into a run.  Below this, plain
/// Huffman (≈1 bit/symbol for the dominant code) beats the marker + varint
/// overhead of a run token.
pub const MIN_RUN: usize = 48;

/// Alphabets whose non-marker symbols all fit below this bound use dense
/// array frequency counting and code lookup instead of `HashMap`s.  The
/// SZ/MGARD quantization codes (≤ 2·`MAX_CODE`+1 = 65 535) always qualify.
const DENSE_SYMS: usize = 1 << 17;

/// Payloads shorter than this skip building the `2^PEEK`-entry fast table
/// (a ~512 KiB fill) and decode every symbol through the canonical walk —
/// cheaper for the small per-request payloads the serve path sees.
const TABLE_MIN_SYMBOLS: usize = 512;

/// Reverses the low `len` bits of `v`.
#[inline]
fn bitrev(v: u64, len: u8) -> u64 {
    v.reverse_bits() >> (64 - len as u32)
}

/// Reusable decoder state: the prefix table, canonical decode arrays, and
/// the intermediate symbol buffer for RLE expansion.  Obtain one via
/// `Default` (or as part of [`crate::CodecScratch`]) and pass it to
/// [`decode_into`]; buffers grow to the high-water mark and stay there.
#[derive(Debug, Default)]
pub struct DecodeScratch {
    /// `2^PEEK` entries of `(symbol, code length)`; length 0 = slow path.
    table: Vec<(u32, u8)>,
    /// `2^PEEK` packed entries `len << 32 | sym` for the multi-stream
    /// decoder (a single-`u64` layout the AVX2 gather kernel can fetch in
    /// one instruction); length 0 = slow path.  Only one of `table` /
    /// `table64` is filled per decode, depending on the entry point.
    table64: Vec<u64>,
    /// Parsed `(symbol, length)` pairs in canonical order.
    lengths: Vec<(u32, u8)>,
    /// Per-length first canonical code.
    first_code: Vec<u64>,
    /// Per-length code count.
    count: Vec<u32>,
    /// Per-length offset of the first symbol in canonical order.
    offset: Vec<u32>,
    /// Symbols in canonical order (parallel to `lengths`).
    syms: Vec<u32>,
    /// Decoded pre-RLE-expansion symbol stream.
    transformed: Vec<u32>,
    /// Parsed run lengths.
    runs: Vec<u32>,
}

/// Reusable encoder state: frequency table, code lookup, RLE buffers, and
/// the payload bit writer.
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Dense symbol frequency counts (dense alphabets only).
    freq: Vec<u64>,
    /// Dense symbol → (bit-reversed code, length) lookup.
    lut: Vec<(u64, u8)>,
    /// RLE-collapsed symbol stream.
    transformed: Vec<u32>,
    /// Collected run lengths.
    runs: Vec<u32>,
    /// Payload writer (buffer reused across calls).
    writer: BitWriter,
    /// Per-sub-stream payload staging for the multi-stream encoder.
    payload_buf: Vec<u8>,
}

thread_local! {
    static ENC_SCRATCH: RefCell<EncodeScratch> = RefCell::new(EncodeScratch::default());
    static DEC_SCRATCH: RefCell<DecodeScratch> = RefCell::new(DecodeScratch::default());
}

/// Encodes a symbol sequence; returns a self-describing byte stream.
///
/// Runs of ≥ [`MIN_RUN`] identical symbols are collapsed to a
/// `(symbol, RUN_MARKER)` pair plus an out-of-band run length, so smooth
/// data — where the quantizer emits the same code for long stretches —
/// decodes at memory speed instead of per-symbol entropy-decode speed.
/// (This is the behaviour that makes real SZ's decompression fast at loose
/// tolerances, the Fig. 7 regime.)  RLE is skipped entirely if the input
/// ever uses the marker value itself.
pub fn encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_into(symbols, &mut out);
    out
}

/// [`encode`] appending to an existing buffer, reusing a thread-local
/// [`EncodeScratch`] so steady-state encoding allocates nothing but the
/// output bytes.
pub fn encode_into(symbols: &[u32], out: &mut Vec<u8>) {
    ENC_SCRATCH.with(|s| encode_with(symbols, out, &mut s.borrow_mut()));
}

/// [`encode_into`] with caller-owned scratch state.
pub fn encode_with(symbols: &[u32], out: &mut Vec<u8>, s: &mut EncodeScratch) {
    // Every encode path (`encode`, `encode_into`) funnels through here, so
    // one span covers them all.
    let _span = errflow_obs::trace::span("codec.huffman.encode");
    out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());

    s.transformed.clear();
    s.runs.clear();
    // Single fused pass: run detection doubles as the marker scan, so the
    // input is read once instead of twice (`contains` + collapse).
    let rle_ok = rle_collapse_checked(symbols, &mut s.transformed, &mut s.runs);
    let transformed: &[u32] = if rle_ok { &s.transformed } else { symbols };
    out.push(rle_ok as u8);
    out.extend_from_slice(&(s.runs.len() as u32).to_le_bytes());
    for &r in &s.runs {
        write_varint(out, r);
    }

    out.extend_from_slice(&(transformed.len() as u64).to_le_bytes());
    if transformed.is_empty() {
        out.extend_from_slice(&0u32.to_le_bytes());
        return;
    }

    let lengths = code_lengths(transformed, &mut s.freq);

    // Header: number of distinct symbols, then (symbol, length) pairs in
    // canonical order.
    out.extend_from_slice(&(lengths.len() as u32).to_le_bytes());
    for &(sym, len) in &lengths {
        out.extend_from_slice(&sym.to_le_bytes());
        out.push(len);
    }

    let (dense, marker_code, map) = build_encode_lut(&lengths, &mut s.lut);
    let w = &mut s.writer;
    w.reset();
    write_payload_symbols(w, transformed, dense, &s.lut, marker_code, &map);
    let payload_len = w.bit_len().div_ceil(8);
    out.extend_from_slice(&(payload_len as u64).to_le_bytes());
    w.append_bytes_to(out);
}

/// Builds the symbol → (bit-reversed code, length) lookup shared by the
/// single- and multi-stream encoders.  The writer emits LSB-first, so
/// storing the bit-reversed canonical code produces the MSB-first stream
/// order decoding needs.  Dense array lookup for small alphabets (with the
/// `RUN_MARKER` code held out-of-band), `HashMap` fallback otherwise.
fn build_encode_lut(
    lengths: &[(u32, u8)],
    lut: &mut Vec<(u64, u8)>,
) -> (bool, (u64, u8), HashMap<u32, (u64, u8)>) {
    let max_sym = lengths
        .iter()
        .filter(|&&(sym, _)| sym != RUN_MARKER)
        .map(|&(sym, _)| sym)
        .max()
        .unwrap_or(0) as usize;
    let dense = max_sym < DENSE_SYMS;
    let mut marker_code = (0u64, 0u8);
    let mut map: HashMap<u32, (u64, u8)> = HashMap::new();
    if dense {
        // Grow-only: entries left over from a previous block are never
        // read, because every symbol the payload loop looks up appears in
        // this block's `lengths` and is overwritten below.
        if lut.len() <= max_sym {
            lut.resize(max_sym + 1, (0, 0));
        }
    } else {
        map.reserve(lengths.len());
    }
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(sym, len) in lengths {
        code = code.wrapping_shl((len - prev_len) as u32);
        let rev = (bitrev(code, len), len);
        if dense {
            if sym == RUN_MARKER {
                marker_code = rev;
            } else {
                lut[sym as usize] = rev;
            }
        } else {
            map.insert(sym, rev);
        }
        code += 1;
        prev_len = len;
    }
    (dense, marker_code, map)
}

/// Writes one payload's worth of symbols through the lookup built by
/// [`build_encode_lut`].
fn write_payload_symbols(
    w: &mut BitWriter,
    symbols: &[u32],
    dense: bool,
    lut: &[(u64, u8)],
    marker_code: (u64, u8),
    map: &HashMap<u32, (u64, u8)>,
) {
    if dense {
        for &sym in symbols {
            let (rev, len) = if sym == RUN_MARKER {
                marker_code
            } else {
                lut[sym as usize]
            };
            w.write_bits(rev, len as u32);
        }
    } else {
        for sym in symbols {
            // audit:allow(panic-reach) encode-side invariant: `map` was built
            // from the histogram of this very slice, so every symbol has a
            // code; a miss is a bug, not an input condition.
            let &(rev, len) = map.get(sym).expect("symbol has a code");
            w.write_bits(rev, len as u32);
        }
    }
}

/// Flag-byte value marking a raw fixed-width (16-bit) symbol payload in
/// the multi-stream block: no code table, no RLE, symbols stored as `u16`
/// little-endian.  Values `0`/`1` remain the Huffman payload's RLE flag.
pub const FLAG_RAW16: u8 = 2;

/// Estimated size in bytes of the Huffman-coded block for a collapsed
/// symbol stream with histogram `sorted`, table included.  Uses integer
/// `ilog2` in place of the tree build, so the raw-vs-Huffman decision
/// costs one pass over the *distinct* symbols, not a tree construction.
/// `log2(n/f)` rounded against raw16 (over-estimating code lengths), so
/// borderline distributions keep the exact Huffman path.
fn estimated_huffman_bytes(sorted: &[(u32, u64)], n_sym: u64) -> usize {
    let log2n = u64::BITS - n_sym.max(1).leading_zeros(); // ceil-ish log2
    let mut bits = 0u64;
    for &(_, f) in sorted {
        let len = (log2n - (u64::BITS - 1 - f.max(1).leading_zeros())).max(1);
        bits += f * u64::from(len);
    }
    4 + 5 * sorted.len() + (bits / 8) as usize
}

/// Whether the multi-stream encoder should store this block as raw 16-bit
/// symbols instead of Huffman codes.  Eligible only when the input itself
/// is marker-free (`rle_ok`) and every symbol fits `u16`; chosen when the
/// estimated Huffman block (codes + table + run varints) is no smaller
/// than the fixed-width payload — the incompressible regime tight error
/// bounds push the quantizer into, where the tree build and bit-packing
/// are pure overhead.
fn choose_raw16(rle_ok: bool, sorted: &[(u32, u64)], n_original: usize, n_runs: usize) -> bool {
    if !rle_ok || n_original == 0 {
        return false;
    }
    let max_sym = sorted
        .iter()
        .rev()
        .find(|&&(sym, _)| sym != RUN_MARKER)
        .map(|&(sym, _)| sym);
    let Some(max_sym) = max_sym else {
        return false;
    };
    if max_sym > u32::from(u16::MAX) {
        return false;
    }
    let n_sym: u64 = sorted.iter().map(|&(_, f)| f).sum();
    2 * n_original < estimated_huffman_bytes(sorted, n_sym) + 2 * n_runs
}

/// Multi-stream variant of [`encode`]: `segments` are encoded against one
/// shared code table but into independent payloads, one per segment, so
/// they can be decoded as parallel lanes.  See the module docs.
pub fn encode_multi(segments: &[&[u32]]) -> Vec<u8> {
    let mut out = Vec::new();
    encode_multi_into(segments, &mut out);
    out
}

/// [`encode_multi`] appending to an existing buffer via the thread-local
/// [`EncodeScratch`].
pub fn encode_multi_into(segments: &[&[u32]], out: &mut Vec<u8>) {
    ENC_SCRATCH.with(|s| encode_multi_with(segments, out, &mut s.borrow_mut()));
}

/// [`encode_multi_into`] with caller-owned scratch state.
///
/// Block layout (all integers little-endian):
///
/// ```text
/// n_original u64 | n_streams u8 | flag u8
/// per stream: n_original_s u64 | n_runs_s u32 | runs varint* | n_symbols_s u64
/// n_distinct u32 | (symbol u32, len u8)*          — shared code table
/// per stream: payload_len_s u64
/// concatenated payloads
/// ```
///
/// `flag` is `0`/`1` (Huffman payload, RLE off/on) or [`FLAG_RAW16`]:
/// raw payloads store the original symbols as fixed-width `u16`
/// little-endian with no runs and **no code-table section** (the
/// `n_distinct` field and table are absent; payload lengths follow the
/// per-stream headers directly).  The encoder picks raw16 when the
/// histogram says Huffman cannot beat 16 bits/symbol — the incompressible
/// regime where entropy coding is pure overhead in both directions.
///
/// RLE runs are collapsed **per segment**, so a run marker never leads a
/// sub-stream and expansion needs no cross-lane state.
pub fn encode_multi_with(segments: &[&[u32]], out: &mut Vec<u8>, s: &mut EncodeScratch) {
    let _span = errflow_obs::trace::span("codec.huffman.encode_multi");
    debug_assert!(
        !segments.is_empty() && segments.len() <= crate::format::MAX_STREAMS,
        "segment count {} outside 1..={}",
        segments.len(),
        crate::format::MAX_STREAMS
    );
    let n_original: usize = segments.iter().map(|seg| seg.len()).sum();
    out.extend_from_slice(&(n_original as u64).to_le_bytes());
    out.push(segments.len() as u8);

    s.transformed.clear();
    s.runs.clear();
    let mut t_bounds = Vec::with_capacity(segments.len() + 1);
    let mut r_bounds = Vec::with_capacity(segments.len() + 1);
    t_bounds.push(0usize);
    r_bounds.push(0usize);
    // Single fused pass per segment: run detection doubles as the marker
    // scan.  If any segment uses the marker symbol itself, the whole block
    // falls back to raw storage (rare — quantizer symbols never reach
    // `u32::MAX`), so the restart below re-reads the inputs only then.
    let mut rle_ok = true;
    for seg in segments {
        if !rle_collapse_checked(seg, &mut s.transformed, &mut s.runs) {
            rle_ok = false;
            break;
        }
        t_bounds.push(s.transformed.len());
        r_bounds.push(s.runs.len());
    }
    if !rle_ok {
        s.transformed.clear();
        s.runs.clear();
        t_bounds.truncate(1);
        r_bounds.truncate(1);
        for seg in segments {
            s.transformed.extend_from_slice(seg);
            t_bounds.push(s.transformed.len());
            r_bounds.push(s.runs.len());
        }
    }
    // Histogram once, then pick the payload mode: the same frequencies
    // feed either the raw16 decision (incompressible inputs skip the tree
    // build and bit-packing entirely) or the Huffman tree below.
    let sorted = if s.transformed.is_empty() {
        Vec::new()
    } else {
        frequencies(&s.transformed, &mut s.freq)
    };
    if choose_raw16(rle_ok, &sorted, n_original, s.runs.len()) {
        out.push(FLAG_RAW16);
        for seg in segments {
            out.extend_from_slice(&(seg.len() as u64).to_le_bytes());
            out.extend_from_slice(&0u32.to_le_bytes());
            out.extend_from_slice(&(seg.len() as u64).to_le_bytes());
        }
        for seg in segments {
            out.extend_from_slice(&((seg.len() * 2) as u64).to_le_bytes());
        }
        for seg in segments {
            let start = out.len();
            out.resize(start + 2 * seg.len(), 0);
            for (dst, &sym) in out[start..].chunks_exact_mut(2).zip(*seg) {
                dst.copy_from_slice(&(sym as u16).to_le_bytes());
            }
        }
        return;
    }
    out.push(rle_ok as u8);
    for (i, seg) in segments.iter().enumerate() {
        out.extend_from_slice(&(seg.len() as u64).to_le_bytes());
        let seg_runs = &s.runs[r_bounds[i]..r_bounds[i + 1]];
        out.extend_from_slice(&(seg_runs.len() as u32).to_le_bytes());
        for &r in seg_runs {
            write_varint(out, r);
        }
        out.extend_from_slice(&((t_bounds[i + 1] - t_bounds[i]) as u64).to_le_bytes());
    }
    if s.transformed.is_empty() {
        out.extend_from_slice(&0u32.to_le_bytes());
        for _ in segments {
            out.extend_from_slice(&0u64.to_le_bytes());
        }
        return;
    }

    let lengths = code_lengths_from_sorted(sorted);
    out.extend_from_slice(&(lengths.len() as u32).to_le_bytes());
    for &(sym, len) in &lengths {
        out.extend_from_slice(&sym.to_le_bytes());
        out.push(len);
    }

    let (dense, marker_code, map) = build_encode_lut(&lengths, &mut s.lut);
    s.payload_buf.clear();
    let mut payload_lens = Vec::with_capacity(segments.len());
    for i in 0..segments.len() {
        let w = &mut s.writer;
        w.reset();
        write_payload_symbols(
            w,
            &s.transformed[t_bounds[i]..t_bounds[i + 1]],
            dense,
            &s.lut,
            marker_code,
            &map,
        );
        let before = s.payload_buf.len();
        w.append_bytes_to(&mut s.payload_buf);
        payload_lens.push((s.payload_buf.len() - before) as u64);
    }
    for &l in &payload_lens {
        out.extend_from_slice(&l.to_le_bytes());
    }
    out.extend_from_slice(&s.payload_buf);
}

/// Collapses runs of ≥ [`MIN_RUN`] identical symbols into `transformed` /
/// `runs`.  A run of `s` with length `L` becomes `[s, RUN_MARKER]` plus an
/// out-of-band count `L − 1`.
///
/// The same pass doubles as the marker scan: if the input itself contains
/// [`RUN_MARKER`] the collapse is invalid, so everything this call appended
/// is rolled back and `false` is returned — the caller stores the symbols
/// raw.  Fusing the scan into run detection keeps encoding at one read of
/// the input instead of two.
fn rle_collapse_checked(symbols: &[u32], transformed: &mut Vec<u32>, runs: &mut Vec<u32>) -> bool {
    let t_start = transformed.len();
    let r_start = runs.len();
    transformed.reserve(symbols.len());
    let mut i = 0;
    while i < symbols.len() {
        let s = symbols[i];
        if s == RUN_MARKER {
            transformed.truncate(t_start);
            runs.truncate(r_start);
            return false;
        }
        let mut j = i + 1;
        while j < symbols.len() && symbols[j] == s && j - i < u32::MAX as usize {
            j += 1;
        }
        let len = j - i;
        if len >= MIN_RUN {
            transformed.push(s);
            transformed.push(RUN_MARKER);
            runs.push((len - 1) as u32);
        } else {
            transformed.extend(std::iter::repeat(s).take(len));
        }
        i = j;
    }
    true
}

/// Inverse of [`rle_collapse_checked`].  Appends to `out`; run expansion is a
/// single `Vec::resize` fill per run (memset speed for the dominant-symbol
/// stretches that make up smooth-field streams).
fn rle_expand_into(
    transformed: &[u32],
    runs: &[u32],
    n_original: usize,
    out: &mut Vec<u32>,
) -> Result<(), CompressError> {
    out.reserve(crate::traits::safe_capacity(
        n_original,
        transformed.len() * 4,
    ));
    rle_expand_segment(transformed, runs, n_original, out)
}

/// Segment-scoped RLE expansion: appends exactly `n_original` symbols onto
/// `out` (which may already hold earlier segments).  A run marker's
/// predecessor must lie **inside** this segment — the encoder collapses
/// runs per segment, so a marker leading a segment is corruption, and a
/// run can never replicate another sub-stream's data.
fn rle_expand_segment(
    transformed: &[u32],
    runs: &[u32],
    n_original: usize,
    out: &mut Vec<u32>,
) -> Result<(), CompressError> {
    let seg_start = out.len();
    let target = seg_start + n_original;
    let mut run_it = runs.iter();
    for &s in transformed {
        if s == RUN_MARKER {
            let &count = run_it.next().ok_or_else(|| {
                CompressError::CorruptStream("run marker without a run length".into())
            })?;
            if out.len() == seg_start {
                return Err(CompressError::CorruptStream(
                    "run marker at stream start".into(),
                ));
            }
            let prev = out[out.len() - 1];
            // Reject before materialising: a corrupt run length must not
            // drive a giant allocation just to fail the length check.
            if count as usize > target - out.len() {
                return Err(CompressError::CorruptStream(
                    "expanded stream longer than declared".into(),
                ));
            }
            out.resize(out.len() + count as usize, prev);
        } else {
            if out.len() >= target {
                return Err(CompressError::CorruptStream(
                    "expanded stream longer than declared".into(),
                ));
            }
            out.push(s);
        }
    }
    if out.len() != target {
        return Err(CompressError::CorruptStream(format!(
            "expanded to {} symbols, expected {n_original}",
            out.len() - seg_start
        )));
    }
    Ok(())
}

/// Decodes a stream produced by [`encode`].  Returns the symbols and the
/// number of bytes consumed from `stream`.
pub fn decode(stream: &[u8]) -> Result<(Vec<u32>, usize), CompressError> {
    DEC_SCRATCH.with(|s| {
        let mut out = Vec::new();
        let consumed = decode_into(stream, &mut out, &mut s.borrow_mut())?;
        Ok((out, consumed))
    })
}

/// [`decode`] into a caller-owned buffer with reusable scratch state.
/// `out` is cleared first; on success it holds the decoded symbols and the
/// return value is the number of bytes consumed from `stream`.
pub fn decode_into(
    stream: &[u8],
    out: &mut Vec<u32>,
    s: &mut DecodeScratch,
) -> Result<usize, CompressError> {
    let _span = errflow_obs::trace::span("codec.huffman.decode");
    out.clear();
    let mut pos = 0usize;
    let n_original = read_len_u64(stream, &mut pos, "n_original")?;
    let rle_used = read_u8(stream, &mut pos, "rle flag")? != 0;
    let n_runs = read_len_u32(stream, &mut pos, "n_runs")?;
    // Every run costs at least one varint byte: reject forged counts before
    // reserving anything.
    if n_runs > stream.len() - pos {
        return Err(CompressError::CorruptStream(
            "declared run count exceeds stream length".into(),
        ));
    }
    s.runs.clear();
    s.runs
        .reserve(crate::traits::safe_capacity(n_runs, stream.len()));
    for _ in 0..n_runs {
        s.runs.push(read_varint(stream, &mut pos)?);
    }
    let n_symbols = read_len_u64(stream, &mut pos, "n_symbols")?;
    let n_distinct = read_len_u32(stream, &mut pos, "n_distinct")?;
    if n_symbols == 0 {
        if n_original != 0 {
            return Err(CompressError::CorruptStream(
                "empty payload for nonempty stream".into(),
            ));
        }
        return Ok(pos);
    }
    if n_distinct == 0 {
        return Err(CompressError::CorruptStream(
            "nonempty payload with empty alphabet".into(),
        ));
    }
    // Transformed-length accounting: without RLE, the payload decodes to
    // exactly `n_original` symbols; with RLE, every transformed symbol
    // except run markers (at most one per run) emits at least one output
    // symbol.  Reject inconsistent headers before any table allocation.
    if !rle_used && n_symbols != n_original {
        return Err(CompressError::CorruptStream(
            "symbol count disagrees with declared output length".into(),
        ));
    }
    if rle_used && n_symbols > n_original.saturating_add(s.runs.len()) {
        return Err(CompressError::CorruptStream(
            "symbol count exceeds declared output length plus runs".into(),
        ));
    }
    let max_len = parse_code_table(stream, &mut pos, s, n_distinct)?;
    let with_table = n_symbols >= TABLE_MIN_SYMBOLS;
    build_canon_arrays(
        s,
        max_len,
        if with_table {
            FastTable::Pairs
        } else {
            FastTable::None
        },
    );

    let payload_len = read_len_u64(stream, &mut pos, "payload_len")?;
    // Overflow-proof bounds check: slice from `pos` first, then take
    // `payload_len` — `pos + payload_len` is never materialised.
    let payload = stream
        .get(pos..)
        .and_then(|rest| rest.get(..payload_len))
        .ok_or_else(|| CompressError::CorruptStream("truncated payload".into()))?;
    // Every decoded symbol consumes at least one payload bit.
    if n_symbols > payload_len.saturating_mul(8) {
        return Err(CompressError::CorruptStream(
            "declared symbol count exceeds payload bits".into(),
        ));
    }
    let consumed = pos + payload_len;

    let DecodeScratch {
        table,
        first_code,
        count,
        offset,
        syms,
        transformed,
        runs,
        ..
    } = s;
    let canon = CanonicalArrays {
        first_code,
        count,
        offset,
        syms,
        max_len,
    };
    if rle_used {
        transformed.clear();
        transformed.reserve(crate::traits::safe_capacity(n_symbols, payload.len()));
        decode_symbols(payload, n_symbols, with_table, table, &canon, transformed)?;
        rle_expand_into(transformed, runs, n_original, out)?;
    } else {
        out.reserve(crate::traits::safe_capacity(n_symbols, payload.len()));
        decode_symbols(payload, n_symbols, with_table, table, &canon, out)?;
        if out.len() != n_original {
            return Err(CompressError::CorruptStream(format!(
                "decoded {} symbols, expected {n_original}",
                out.len()
            )));
        }
    }
    Ok(consumed)
}

/// Parses and validates the `(symbol, length)` code-table section shared
/// by the single- and multi-stream decoders, leaving the canonical-order
/// pairs in `s.lengths`.  Returns the maximum code length.
fn parse_code_table(
    stream: &[u8],
    pos: &mut usize,
    s: &mut DecodeScratch,
    n_distinct: usize,
) -> Result<u8, CompressError> {
    // Each code-table entry is 5 bytes (u32 symbol + u8 length): a valid
    // `n_distinct` never exceeds what the remaining stream can hold.
    if n_distinct
        .checked_mul(5)
        .is_none_or(|bytes| bytes > stream.len() - *pos)
    {
        return Err(CompressError::CorruptStream(
            "declared code table exceeds stream length".into(),
        ));
    }
    s.lengths.clear();
    s.lengths
        .reserve(crate::traits::safe_capacity(n_distinct, stream.len()));
    for _ in 0..n_distinct {
        let sym = read_len_u32(stream, pos, "code table symbol")? as u32;
        let len = read_u8(stream, pos, "code table length")?;
        if len == 0 || len > 64 {
            return Err(CompressError::CorruptStream(format!(
                "invalid code length {len}"
            )));
        }
        if let Some(&(_, prev)) = s.lengths.last() {
            if len < prev {
                return Err(CompressError::CorruptStream(
                    "code table not in canonical order".into(),
                ));
            }
        }
        s.lengths.push((sym, len));
    }
    // Kraft check: Σ 2^(max−len) must not exceed 2^max, or the canonical
    // code assignment overflows (only possible with corrupt tables).
    let max_len = s.lengths.last().map(|&(_, l)| l).unwrap_or(1);
    let mut kraft: u128 = 0;
    for &(_, len) in &s.lengths {
        kraft += 1u128 << (max_len as u32 - len as u32);
    }
    if kraft > (1u128 << max_len as u32) {
        return Err(CompressError::CorruptStream(
            "code table violates the Kraft inequality".into(),
        ));
    }
    Ok(max_len)
}

/// Which fast prefix table [`build_canon_arrays`] should fill alongside
/// the canonical arrays.
enum FastTable {
    /// No fast table — every symbol takes the canonical walk (small
    /// payloads, where the `2^PEEK` fill would dominate).
    None,
    /// `(symbol, length)` pair entries — the single-stream decode layout.
    Pairs,
    /// Packed `len << 32 | sym` entries — the multi-stream layout the
    /// AVX2 gather kernel fetches as single `u64`s.
    Packed,
}

/// Builds the canonical decode arrays and the requested fast prefix table
/// in one pass over the canonical code assignment in `s.lengths`.
fn build_canon_arrays(s: &mut DecodeScratch, max_len: u8, fast: FastTable) {
    match fast {
        FastTable::None => {}
        FastTable::Pairs => {
            s.table.clear();
            s.table.resize(1 << PEEK, (0, 0));
        }
        FastTable::Packed => {
            s.table64.clear();
            s.table64.resize(1 << PEEK, 0);
        }
    }
    s.first_code.clear();
    s.first_code.resize(max_len as usize + 1, 0);
    s.count.clear();
    s.count.resize(max_len as usize + 1, 0);
    s.offset.clear();
    s.offset.resize(max_len as usize + 1, 0);
    s.syms.clear();
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for (i, &(sym, len)) in s.lengths.iter().enumerate() {
        // wrapping_shl: a Kraft-valid but corrupt table can open with a
        // 64-bit code; decode then yields garbage (rejected downstream)
        // instead of a shift panic.
        code = code.wrapping_shl((len - prev_len) as u32);
        if s.count[len as usize] == 0 {
            s.first_code[len as usize] = code;
            s.offset[len as usize] = i as u32;
        }
        s.count[len as usize] += 1;
        s.syms.push(sym);
        if (len as u32) <= PEEK {
            let base = bitrev(code, len) as usize;
            let step = 1usize << len;
            match fast {
                FastTable::None => {}
                FastTable::Pairs => {
                    let mut idx = base;
                    while idx < (1 << PEEK) {
                        s.table[idx] = (sym, len);
                        idx += step;
                    }
                }
                FastTable::Packed => {
                    let packed = ((len as u64) << 32) | sym as u64;
                    let mut idx = base;
                    while idx < (1 << PEEK) {
                        s.table64[idx] = packed;
                        idx += step;
                    }
                }
            }
        }
        // wrapping_add: a Kraft-*complete* table whose last code is the
        // all-ones 64-bit code makes this final increment wrap; the
        // value is never read again (the Kraft check rejects any table
        // that would assign a code past it).
        code = code.wrapping_add(1);
        prev_len = len;
    }
}

/// One parsed sub-stream of a multi-stream block.
struct SubStream {
    /// Declared post-expansion symbol count.
    n_original: usize,
    /// Declared pre-expansion (payload) symbol count.
    n_symbols: usize,
    /// This sub-stream's slice of the shared run-length buffer.
    runs: std::ops::Range<usize>,
    /// `(byte offset, byte length)` of this sub-stream's payload within
    /// the shared payload region.
    payload: (usize, usize),
}

/// Decodes a multi-stream block produced by [`encode_multi`].  Returns the
/// symbols and the number of bytes consumed.
pub fn decode_multi(stream: &[u8]) -> Result<(Vec<u32>, usize), CompressError> {
    DEC_SCRATCH.with(|s| {
        let mut out = Vec::new();
        let consumed = decode_multi_into(stream, &mut out, &mut s.borrow_mut())?;
        Ok((out, consumed))
    })
}

/// [`decode_multi`] into a caller-owned buffer with reusable scratch.
///
/// Validation mirrors [`decode_into`] per sub-stream, plus the cross-stream
/// invariants: per-stream output counts must sum to the declared total, and
/// per-stream payload lengths must all fit the remaining stream.  Decoding
/// then runs one lane per sub-stream — the AVX2 gather kernel when the host
/// supports it, interleaved-capable scalar lanes otherwise.
pub fn decode_multi_into(
    stream: &[u8],
    out: &mut Vec<u32>,
    s: &mut DecodeScratch,
) -> Result<usize, CompressError> {
    let _span = errflow_obs::trace::span("codec.huffman.decode_multi");
    out.clear();
    let mut pos = 0usize;
    let n_original = read_len_u64(stream, &mut pos, "n_original")?;
    let n_streams = read_u8(stream, &mut pos, "stream count")? as usize;
    if n_streams == 0 || n_streams > crate::format::MAX_STREAMS {
        return Err(CompressError::CorruptStream(format!(
            "sub-stream count {n_streams} outside 1..={}",
            crate::format::MAX_STREAMS
        )));
    }
    let flag = read_u8(stream, &mut pos, "payload flag")?;
    if flag > FLAG_RAW16 {
        return Err(CompressError::CorruptStream(format!(
            "unknown payload flag {flag}"
        )));
    }
    let raw16 = flag == FLAG_RAW16;
    let rle_used = flag == 1;
    s.runs.clear();
    let mut subs: Vec<SubStream> = Vec::with_capacity(n_streams);
    let mut sum_original = 0usize;
    let mut sum_symbols = 0usize;
    for _ in 0..n_streams {
        let n_orig_s = read_len_u64(stream, &mut pos, "sub-stream n_original")?;
        let n_runs = read_len_u32(stream, &mut pos, "sub-stream n_runs")?;
        // Every run costs at least one varint byte: reject forged counts
        // before reserving anything.
        if n_runs > stream.len() - pos {
            return Err(CompressError::CorruptStream(
                "declared run count exceeds stream length".into(),
            ));
        }
        let runs_start = s.runs.len();
        s.runs
            .reserve(crate::traits::safe_capacity(n_runs, stream.len()));
        for _ in 0..n_runs {
            s.runs.push(read_varint(stream, &mut pos)?);
        }
        let n_sym = read_len_u64(stream, &mut pos, "sub-stream n_symbols")?;
        if !rle_used && n_sym != n_orig_s {
            return Err(CompressError::CorruptStream(
                "symbol count disagrees with declared output length".into(),
            ));
        }
        if rle_used && n_sym > n_orig_s.saturating_add(n_runs) {
            return Err(CompressError::CorruptStream(
                "symbol count exceeds declared output length plus runs".into(),
            ));
        }
        sum_original = sum_original.checked_add(n_orig_s).ok_or_else(|| {
            CompressError::CorruptStream("sub-stream output lengths overflow".into())
        })?;
        sum_symbols = sum_symbols.checked_add(n_sym).ok_or_else(|| {
            CompressError::CorruptStream("sub-stream symbol counts overflow".into())
        })?;
        subs.push(SubStream {
            n_original: n_orig_s,
            n_symbols: n_sym,
            runs: runs_start..s.runs.len(),
            payload: (0, 0),
        });
    }
    if sum_original != n_original {
        return Err(CompressError::CorruptStream(
            "sub-stream output lengths don't sum to the declared total".into(),
        ));
    }
    if raw16 {
        // Raw fixed-width payload: no code-table section.  The shared
        // header loop already enforced `n_symbols_s == n_original_s` per
        // stream (the flag is not the RLE flag), so only the run tables
        // and payload byte lengths need checking here.
        if !s.runs.is_empty() {
            return Err(CompressError::CorruptStream(
                "raw16 payload with run tables".into(),
            ));
        }
        let mut total_payload = 0usize;
        for sub in &mut subs {
            let l = read_len_u64(stream, &mut pos, "sub-stream payload length")?;
            if l != 2 * sub.n_symbols {
                return Err(CompressError::CorruptStream(
                    "raw16 payload length disagrees with symbol count".into(),
                ));
            }
            sub.payload = (total_payload, l);
            total_payload = total_payload.checked_add(l).ok_or_else(|| {
                CompressError::CorruptStream("sub-stream payload lengths overflow".into())
            })?;
        }
        let payload = stream
            .get(pos..)
            .and_then(|rest| rest.get(..total_payload))
            .ok_or_else(|| CompressError::CorruptStream("truncated payload".into()))?;
        // total_payload == 2·n_original was just verified against the
        // stream, so this resize is bounded by the input's actual size.
        out.resize(n_original, 0);
        let mut dst = out.as_mut_slice();
        let mut rest = payload;
        for sub in &subs {
            let (bytes, tail) = rest.split_at(sub.payload.1);
            rest = tail;
            let (head, dst_tail) = dst.split_at_mut(sub.n_symbols);
            dst = dst_tail;
            for (slot, pair) in head.iter_mut().zip(bytes.chunks_exact(2)) {
                *slot = u32::from(u16::from_le_bytes([pair[0], pair[1]]));
            }
        }
        return Ok(pos + total_payload);
    }
    let n_distinct = read_len_u32(stream, &mut pos, "n_distinct")?;
    if sum_symbols == 0 {
        if n_original != 0 {
            return Err(CompressError::CorruptStream(
                "empty payload for nonempty stream".into(),
            ));
        }
        if n_distinct != 0 {
            return Err(CompressError::CorruptStream(
                "code table without symbols".into(),
            ));
        }
        for _ in 0..n_streams {
            if read_len_u64(stream, &mut pos, "sub-stream payload length")? != 0 {
                return Err(CompressError::CorruptStream(
                    "payload bytes without symbols".into(),
                ));
            }
        }
        return Ok(pos);
    }
    if n_distinct == 0 {
        return Err(CompressError::CorruptStream(
            "nonempty payload with empty alphabet".into(),
        ));
    }
    let max_len = parse_code_table(stream, &mut pos, s, n_distinct)?;
    let with_table = sum_symbols >= TABLE_MIN_SYMBOLS;
    build_canon_arrays(
        s,
        max_len,
        if with_table {
            FastTable::Packed
        } else {
            FastTable::None
        },
    );

    let mut total_payload = 0usize;
    let mut byte_cursor = 0usize;
    for sub in &mut subs {
        let l = read_len_u64(stream, &mut pos, "sub-stream payload length")?;
        sub.payload = (byte_cursor, l);
        total_payload = total_payload.checked_add(l).ok_or_else(|| {
            CompressError::CorruptStream("sub-stream payload lengths overflow".into())
        })?;
        byte_cursor = total_payload;
    }
    // Overflow-proof bounds check: slice from `pos` first, then take
    // `total_payload` — `pos + total_payload` is never materialised.
    let payload = stream
        .get(pos..)
        .and_then(|rest| rest.get(..total_payload))
        .ok_or_else(|| CompressError::CorruptStream("truncated payload".into()))?;
    // Every decoded symbol consumes at least one bit of its own payload.
    for sub in &subs {
        if sub.n_symbols > sub.payload.1.saturating_mul(8) {
            return Err(CompressError::CorruptStream(
                "declared symbol count exceeds payload bits".into(),
            ));
        }
    }
    let consumed = pos + total_payload;

    let DecodeScratch {
        table64,
        first_code,
        count,
        offset,
        syms,
        transformed,
        runs,
        ..
    } = s;
    let canon = CanonicalArrays {
        first_code,
        count,
        offset,
        syms,
        max_len,
    };
    let table64: &[u64] = if with_table { table64 } else { &[] };
    if rle_used {
        transformed.clear();
        // Bounded: each sub-stream's symbol count is capped at 8× its
        // payload bytes above, so the sum is capped by the stream length.
        transformed.resize(sum_symbols, 0);
        decode_lanes(payload, &subs, table64, &canon, transformed)?;
        out.reserve(crate::traits::safe_capacity(
            n_original,
            transformed.len() * 4,
        ));
        let mut t_off = 0usize;
        for sub in &subs {
            let seg = &transformed[t_off..t_off + sub.n_symbols];
            t_off += sub.n_symbols;
            rle_expand_segment(seg, &runs[sub.runs.clone()], sub.n_original, out)?;
        }
    } else {
        out.resize(n_original, 0);
        decode_lanes(payload, &subs, table64, &canon, out)?;
    }
    Ok(consumed)
}

// Test-only switch routing 4-stream decodes through the AVX2 gather
// kernel, so its parity with the interleaved scalar loop stays covered
// without mutating process environment from tests.
#[cfg(all(test, target_arch = "x86_64"))]
thread_local! {
    static FORCE_GATHER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

#[cfg(all(test, target_arch = "x86_64"))]
fn force_gather_for_test() -> bool {
    FORCE_GATHER.with(|f| f.get())
}

#[cfg(all(not(test), target_arch = "x86_64"))]
fn force_gather_for_test() -> bool {
    false
}

/// Per-lane decode cursor shared between the scalar lane decoder and the
/// AVX2 kernel: an absolute bit position in the shared payload region, the
/// lane's end bit, and how many symbols it has produced.
pub(crate) struct LaneCursor {
    pub(crate) bitpos: usize,
    pub(crate) end_bit: usize,
    pub(crate) written: usize,
}

/// Decodes every sub-stream into its contiguous region of `dst` (regions
/// ordered by sub-stream, sized `n_symbols` each).  Dispatches to the AVX2
/// gather kernel when available; the resumable scalar lane decoder runs
/// the tail (and the whole decode on portable hosts).
fn decode_lanes(
    payload: &[u8],
    subs: &[SubStream],
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
    dst: &mut [u32],
) -> Result<(), CompressError> {
    debug_assert_eq!(dst.len(), subs.iter().map(|s| s.n_symbols).sum::<usize>());
    let mut regions: Vec<&mut [u32]> = Vec::with_capacity(subs.len());
    let mut rest: &mut [u32] = dst;
    for sub in subs {
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(sub.n_symbols);
        regions.push(head);
        rest = tail;
    }
    let mut cursors: Vec<LaneCursor> = subs
        .iter()
        .map(|sub| LaneCursor {
            bitpos: sub.payload.0 * 8,
            end_bit: (sub.payload.0 + sub.payload.1) * 8,
            written: 0,
        })
        .collect();
    if cursors.len() == 4 && !table64.is_empty() {
        // Two interchangeable hot-loop arms, both leaving cursors resumable
        // for the scalar finish below.  The interleaved scalar loop is the
        // default: four dependent load→lookup→shift chains overlap in the
        // out-of-order core and beat AVX2 `vpgatherqq` table lookups (whose
        // gather latency dominates) on every x86 host we've measured.  The
        // gather kernel stays selectable for A/B measurement on future
        // micro-architectures with faster gathers.
        #[cfg(target_arch = "x86_64")]
        let use_gather = errflow_tensor::simd::has_avx2()
            && !errflow_tensor::simd::force_scalar()
            && (std::env::var_os("ERRFLOW_HUFF_GATHER").is_some_and(|v| v == "1")
                || force_gather_for_test());
        #[cfg(not(target_arch = "x86_64"))]
        let use_gather = false;
        if use_gather {
            #[cfg(target_arch = "x86_64")]
            crate::huffman_simd::decode_lanes_avx2(
                payload,
                table64,
                canon,
                &mut cursors,
                &mut regions,
            )?;
        } else {
            decode_lanes_ilp4(payload, table64, canon, &mut cursors, &mut regions)?;
        }
    }
    for (cur, region) in cursors.iter_mut().zip(regions.iter_mut()) {
        decode_lane_scalar(
            payload,
            &mut cur.bitpos,
            cur.end_bit,
            table64,
            canon,
            region,
            &mut cur.written,
        )?;
        // The SIMD kernel consumes bits without re-checking the lane
        // boundary per symbol; a lane that ran past its own payload (only
        // possible on a corrupt stream) is rejected here.
        if cur.bitpos > cur.end_bit {
            return Err(CompressError::CorruptStream(
                "sub-stream payload overread".into(),
            ));
        }
    }
    Ok(())
}

/// Interleaved 4-lane table decode — the multi-stream hot loop.
///
/// One lane's decode is a serial chain: window load → table lookup → shift
/// by the code length → next lookup, ~3 dependent loads per symbol.  Four
/// sub-streams give four *independent* chains, and interleaving them lets
/// the out-of-order core run all four at once, hiding most of each chain's
/// latency behind the others'.
///
/// Round structure: enter only while every lane has ≥ 57 trustworthy bits
/// (`end_bit - bitpos`) and ≥ 4 symbols of space, load one 57-bit window
/// per lane, then commit 4 symbols per lane lockstep.  4 × `PEEK` ≤ 52
/// bits, so a window of table hits never runs dry mid-round and — by the
/// prefix property — a hit never consumes another lane's bits even when
/// the window loaded past this lane's end.  A table miss (long code,
/// `len` 0) takes the canonical walk inline for just that lane and reloads
/// its window, so one skewed lane doesn't kick the other three off the
/// fast path; only a lane left with < 57 bits by a long code ends the loop
/// (it is near its tail anyway).  Exit always lands every cursor on a
/// committed-symbol boundary, and the resumable scalar decoder finishes
/// the lane tails.
fn decode_lanes_ilp4(
    payload: &[u8],
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
    cursors: &mut [LaneCursor],
    regions: &mut [&mut [u32]],
) -> Result<(), CompressError> {
    debug_assert_eq!(cursors.len(), 4);
    debug_assert_eq!(regions.len(), 4);
    let mask = (1u64 << PEEK) - 1;
    let mut pos: [usize; 4] = std::array::from_fn(|i| cursors[i].bitpos);
    let mut wr: [usize; 4] = std::array::from_fn(|i| cursors[i].written);
    let end: [usize; 4] = std::array::from_fn(|i| cursors[i].end_bit);
    let cap: [usize; 4] = std::array::from_fn(|i| regions[i].len());
    loop {
        // Fast rounds: pure table hits, no calls, no per-symbol branches
        // beyond the lockstep miss test — this is the loop that has to
        // schedule well.
        let mut miss = false;
        'fast: loop {
            for i in 0..4 {
                if cap[i] - wr[i] < 4 || end[i].saturating_sub(pos[i]) < 57 {
                    break 'fast;
                }
            }
            let mut w: [u64; 4] = std::array::from_fn(|i| load_word(payload, pos[i]));
            for _step in 0..4 {
                let e: [u64; 4] = std::array::from_fn(|i| table64[(w[i] & mask) as usize]);
                // Test all four lanes *before* committing any, so a miss
                // exits with the lanes in lockstep.
                if e.iter().any(|&entry| entry >> 32 == 0) {
                    miss = true;
                    break 'fast;
                }
                for i in 0..4 {
                    let len = (e[i] >> 32) as usize;
                    w[i] >>= len;
                    pos[i] += len;
                    regions[i][wr[i]] = e[i] as u32;
                    wr[i] += 1;
                }
            }
        }
        if !miss {
            break;
        }
        // Long-code recovery, off the hot path: walk one canonical symbol
        // for each lane whose next code misses the table (≤ 3 commits since
        // the round-entry check, so every lane still has ≥ 1 slot and ≥
        // PEEK trustworthy bits), then resume fast rounds.
        for i in 0..4 {
            if end[i].saturating_sub(pos[i]) < PEEK as usize {
                continue;
            }
            let entry = table64[(load_word(payload, pos[i]) & mask) as usize];
            if entry >> 32 != 0 {
                continue;
            }
            let sym = match decode_one_slow(payload, &mut pos[i], end[i], canon) {
                Ok(sym) => sym,
                Err(err) => {
                    // Keep cursors resumable even on a corrupt stream so
                    // callers observe consistent state.
                    for l in 0..4 {
                        cursors[l].bitpos = pos[l];
                        cursors[l].written = wr[l];
                    }
                    return Err(err);
                }
            };
            regions[i][wr[i]] = sym;
            wr[i] += 1;
        }
    }
    for i in 0..4 {
        cursors[i].bitpos = pos[i];
        cursors[i].written = wr[i];
    }
    Ok(())
}

/// Resumable register-batched decode of one lane: fills `dst[*written..]`
/// reading from `payload` between `*bitpos` and `end_bit`.  Identical hot
/// loop to [`decode_symbols`], but against the packed `table64` layout, a
/// slice destination, and lane-relative bounds — bits past `end_bit`
/// belong to the *next* lane and are never consumed, though the 57-bit
/// window may harmlessly observe them (a table entry only ever commits
/// bits of the code itself).
fn decode_lane_scalar(
    payload: &[u8],
    bitpos: &mut usize,
    end_bit: usize,
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
    dst: &mut [u32],
    written: &mut usize,
) -> Result<(), CompressError> {
    if table64.is_empty() {
        while *written < dst.len() {
            dst[*written] = decode_one_slow(payload, bitpos, end_bit, canon)?;
            *written += 1;
        }
        return Ok(());
    }
    let mask = (1u64 << PEEK) - 1;
    let peek = PEEK as usize;
    while *written < dst.len() {
        let rem = end_bit.saturating_sub(*bitpos);
        if rem >= peek {
            let mut word = load_word(payload, *bitpos);
            let mut left = rem.min(57);
            let mut long_code = false;
            while left >= peek && *written < dst.len() {
                let entry = table64[(word & mask) as usize];
                let len = (entry >> 32) as usize;
                if len == 0 {
                    long_code = true;
                    break;
                }
                word >>= len;
                *bitpos += len;
                left -= len;
                dst[*written] = entry as u32;
                *written += 1;
            }
            if long_code {
                dst[*written] = decode_one_slow(payload, bitpos, end_bit, canon)?;
                *written += 1;
            }
            continue;
        }
        // Lane tail: fewer than PEEK trustworthy bits remain, so only
        // accept a table hit whose code fits inside the lane.
        let entry = table64[(load_word(payload, *bitpos) & mask) as usize];
        let len = (entry >> 32) as usize;
        if len > 0 && len <= rem {
            *bitpos += len;
            dst[*written] = entry as u32;
            *written += 1;
        } else {
            dst[*written] = decode_one_slow(payload, bitpos, end_bit, canon)?;
            *written += 1;
        }
    }
    Ok(())
}

/// Decodes a single symbol of one lane — the re-sync step the AVX2 kernel
/// takes when a lane hits a long code (table miss).
pub(crate) fn decode_one_symbol(
    payload: &[u8],
    bitpos: &mut usize,
    end_bit: usize,
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
) -> Result<u32, CompressError> {
    let rem = end_bit.saturating_sub(*bitpos);
    if !table64.is_empty() && rem > 0 {
        let entry = table64[(load_word(payload, *bitpos) & ((1u64 << PEEK) - 1)) as usize];
        let len = (entry >> 32) as usize;
        if len > 0 && len <= rem {
            *bitpos += len;
            return Ok(entry as u32);
        }
    }
    decode_one_slow(payload, bitpos, end_bit, canon)
}

/// Borrowed canonical decode arrays for the slow (long-code) path.
pub(crate) struct CanonicalArrays<'a> {
    first_code: &'a [u64],
    count: &'a [u32],
    offset: &'a [u32],
    syms: &'a [u32],
    max_len: u8,
}

/// Decodes exactly `n_symbols` symbols from `payload` into `out`.
///
/// Hot loop: refill a 64-bit register with ≥ 57 payload bits, then decode
/// table hits back-to-back with one lookup + shift each until fewer than
/// `PEEK` trustworthy bits remain in the register.  Long codes (table miss)
/// and the last < `PEEK` bits of the stream take the canonical walk.
fn decode_symbols(
    payload: &[u8],
    n_symbols: usize,
    with_table: bool,
    table: &[(u32, u8)],
    canon: &CanonicalArrays<'_>,
    out: &mut Vec<u32>,
) -> Result<(), CompressError> {
    let total_bits = payload.len() * 8;
    let mut bitpos = 0usize;
    if !with_table {
        while out.len() < n_symbols {
            out.push(decode_one_slow(payload, &mut bitpos, total_bits, canon)?);
        }
        return Ok(());
    }
    let mask = (1u64 << PEEK) - 1;
    let peek = PEEK as usize;
    while out.len() < n_symbols {
        let rem = total_bits - bitpos;
        if rem >= peek {
            let mut word = load_word(payload, bitpos);
            let mut left = rem.min(57);
            let mut long_code = false;
            while left >= peek && out.len() < n_symbols {
                let (sym, len) = table[(word & mask) as usize];
                if len == 0 {
                    long_code = true;
                    break;
                }
                let l = len as usize;
                word >>= l;
                bitpos += l;
                left -= l;
                out.push(sym);
            }
            if long_code {
                out.push(decode_one_slow(payload, &mut bitpos, total_bits, canon)?);
            }
            continue;
        }
        // Tail: fewer than PEEK bits remain in the whole stream, so the
        // peek pads with zeros; only accept a table hit that fits.
        let (sym, len) = table[(load_word(payload, bitpos) & mask) as usize];
        if len > 0 && len as usize <= rem {
            bitpos += len as usize;
            out.push(sym);
        } else {
            out.push(decode_one_slow(payload, &mut bitpos, total_bits, canon)?);
        }
    }
    Ok(())
}

/// Canonical decode of one symbol, bit by bit: O(1) array arithmetic per
/// candidate length instead of a hash probe per bit.
#[cold]
fn decode_one_slow(
    payload: &[u8],
    bitpos: &mut usize,
    total_bits: usize,
    canon: &CanonicalArrays<'_>,
) -> Result<u32, CompressError> {
    let mut code = 0u64;
    let mut clen = 0usize;
    loop {
        if *bitpos >= total_bits {
            return Err(CompressError::CorruptStream("payload ended early".into()));
        }
        let bit = (payload[*bitpos >> 3] >> (*bitpos & 7)) & 1;
        *bitpos += 1;
        code = (code << 1) | bit as u64;
        clen += 1;
        if clen > canon.max_len as usize {
            return Err(CompressError::CorruptStream(
                "no symbol matches the read prefix".into(),
            ));
        }
        let c = canon.count[clen] as u64;
        if c > 0 && code >= canon.first_code[clen] && code < canon.first_code[clen] + c {
            let idx = canon.offset[clen] as u64 + (code - canon.first_code[clen]);
            return Ok(canon.syms[idx as usize]);
        }
    }
}

/// Computes Huffman code lengths from symbol frequencies, returned in
/// canonical order (ascending length, then ascending symbol).  `freq` is
/// reusable dense-counting scratch.
fn code_lengths(symbols: &[u32], freq: &mut Vec<u64>) -> Vec<(u32, u8)> {
    let sorted = frequencies(symbols, freq);
    code_lengths_from_sorted(sorted)
}

/// [`code_lengths`] continuation for callers that already hold the sorted
/// `(symbol, frequency)` histogram (the multi-stream encoder histograms
/// first to pick between Huffman and raw16 payloads).
///
/// Uses the two-queue construction: leaves sorted by frequency in one
/// queue, merged nodes (whose frequencies come out non-decreasing) in a
/// second, so each merge pops the global minimum from a queue front in
/// O(1) instead of through a binary heap.  Tie-breaking matches the
/// previous heap formulation exactly — on equal frequency a leaf wins
/// over a merged node, equal-frequency leaves keep ascending-symbol
/// order (the sort is stable), merged nodes are FIFO — so the emitted
/// code lengths (and therefore the stream bytes) are unchanged.
fn code_lengths_from_sorted(sorted: Vec<(u32, u64)>) -> Vec<(u32, u8)> {
    if sorted.is_empty() {
        return Vec::new();
    }
    if sorted.len() == 1 {
        return vec![(sorted[0].0, 1)];
    }

    let n = sorted.len();
    // Node ids: 0..n are leaves (positions in `sorted`), n.. are merged
    // nodes in production order.
    let mut leaves: Vec<(u64, u32)> = sorted
        .iter()
        .enumerate()
        .map(|(i, &(_, f))| (f, i as u32))
        .collect();
    // The index is unique, so sorting the (freq, index) pair unstably is
    // exactly the stable-by-frequency order without the temp allocation.
    leaves.sort_unstable();
    let mut merged: Vec<(u64, u32)> = Vec::with_capacity(n - 1);
    let mut children: Vec<(u32, u32)> = Vec::with_capacity(n - 1);
    let (mut i1, mut i2) = (0usize, 0usize);
    // Each of the n-1 merges pops twice; n leaves + n-2 intermediate
    // merged nodes cover all 2(n-1) pops, so the fronts below are always
    // in bounds on whichever side is picked.
    for _ in 0..n - 1 {
        let pop_min = |i1: &mut usize, i2: &mut usize, merged: &[(u64, u32)]| {
            let leaf_front = leaves.get(*i1).map_or(u64::MAX, |&(f, _)| f);
            let merged_front = merged.get(*i2).map_or(u64::MAX, |&(f, _)| f);
            if leaf_front <= merged_front {
                let v = leaves[*i1];
                *i1 += 1;
                v
            } else {
                let v = merged[*i2];
                *i2 += 1;
                v
            }
        };
        let (fa, a) = pop_min(&mut i1, &mut i2, &merged);
        let (fb, b) = pop_min(&mut i1, &mut i2, &merged);
        let id = (n + children.len()) as u32;
        children.push((a, b));
        merged.push((fa + fb, id));
    }

    // Walk depths iteratively from the last merged node (the root).
    let mut lengths: Vec<(u32, u8)> = Vec::with_capacity(n);
    let mut stack = vec![((n + children.len() - 1) as u32, 0u8)];
    while let Some((id, depth)) = stack.pop() {
        if (id as usize) < n {
            lengths.push((sorted[id as usize].0, depth.max(1)));
        } else {
            let (l, r) = children[id as usize - n];
            stack.push((l, depth + 1));
            stack.push((r, depth + 1));
        }
    }
    lengths.sort_unstable_by_key(|&(sym, len)| (len, sym));
    lengths
}

/// Symbol frequencies in ascending symbol order.  Dense counting (array
/// indexed by symbol, `RUN_MARKER` tracked separately) when every
/// non-marker symbol is below [`DENSE_SYMS`]; `HashMap` fallback otherwise.
/// Both paths produce the identical list a sort of hash entries would.
///
/// `freq` is grow-only, all-zero scratch: the function records which
/// entries it increments and zeroes exactly those before returning, so
/// repeated calls touch O(distinct) memory instead of re-clearing and
/// re-scanning the whole alphabet-sized array every time.
fn frequencies(symbols: &[u32], freq: &mut Vec<u64>) -> Vec<(u32, u64)> {
    // Optimistic single pass: count densely while recording touched
    // entries, bailing to the HashMap path on the first symbol outside the
    // dense range (after restoring the zeros).  The common quantizer
    // alphabets never bail, so the input is read once, not twice.
    if freq.len() < DENSE_SYMS {
        freq.resize(DENSE_SYMS, 0);
    }
    let mut touched: Vec<u32> = Vec::new();
    let mut marker = 0u64;
    let mut dense = true;
    for &s in symbols {
        if s == RUN_MARKER {
            marker += 1;
        } else if (s as usize) < DENSE_SYMS {
            let slot = &mut freq[s as usize];
            if *slot == 0 {
                touched.push(s);
            }
            *slot += 1;
        } else {
            dense = false;
            break;
        }
    }
    if dense {
        touched.sort_unstable();
        let mut sorted: Vec<(u32, u64)> = Vec::with_capacity(touched.len() + 1);
        for &s in &touched {
            sorted.push((s, freq[s as usize]));
            freq[s as usize] = 0;
        }
        if marker > 0 {
            // RUN_MARKER is u32::MAX: appending keeps ascending order.
            sorted.push((RUN_MARKER, marker));
        }
        sorted
    } else {
        for &s in &touched {
            freq[s as usize] = 0;
        }
        let mut map: HashMap<u32, u64> = HashMap::new();
        for &s in symbols {
            *map.entry(s).or_insert(0) += 1;
        }
        let mut sorted: Vec<(u32, u64)> = map.into_iter().collect();
        sorted.sort_unstable();
        sorted
    }
}

/// LEB128 varint encoding for run lengths.
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint decoding.
fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| CompressError::CorruptStream("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 35 {
            return Err(CompressError::CorruptStream("varint overflow".into()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn roundtrip(symbols: &[u32]) {
        let enc = encode(symbols);
        let (dec, consumed) = decode(&enc).expect("decode");
        assert_eq!(dec, symbols);
        assert_eq!(consumed, enc.len());
        // Caller-owned scratch path matches the thread-local path.
        let mut scratch = DecodeScratch::default();
        let mut out = Vec::new();
        let consumed2 = decode_into(&enc, &mut out, &mut scratch).expect("decode_into");
        assert_eq!(out, symbols);
        assert_eq!(consumed2, consumed);
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_roundtrip() {
        roundtrip(&[7; 100]);
    }

    #[test]
    fn two_symbols_roundtrip() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% zeros: entropy ≈ 0.29 bits/symbol; Huffman ≈ 1 bit/symbol max,
        // still far below 32.
        let mut rng = StdRng::seed_from_u64(1);
        let symbols: Vec<u32> = (0..10_000)
            .map(|_| {
                if rng.gen_bool(0.95) {
                    0
                } else {
                    rng.gen_range(1..8)
                }
            })
            .collect();
        let enc = encode(&symbols);
        assert!(
            enc.len() < symbols.len() * 4 / 8,
            "compressed {} vs raw {}",
            enc.len(),
            symbols.len() * 4
        );
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let symbols: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..1000)).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn long_codes_take_slow_path() {
        // A heavily skewed geometric-ish distribution over many symbols
        // produces code lengths well beyond the 12-bit fast table.
        let mut symbols = Vec::new();
        for sym in 0u32..24 {
            let count = 1usize << (24 - sym).min(16);
            symbols.extend(std::iter::repeat(sym).take(count));
        }
        roundtrip(&symbols);
    }

    #[test]
    fn large_symbol_values_roundtrip() {
        // Symbols beyond DENSE_SYMS exercise the HashMap fallback on both
        // frequency counting and code lookup.
        roundtrip(&[u32::MAX, 0, u32::MAX - 1, 12345678, u32::MAX]);
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(&[1, 2, 3, 1, 2, 3]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&enc[..4]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let mut enc = encode(&[5, 5, 9]);
        let orig_len = enc.len();
        enc.extend_from_slice(&[0xab; 10]);
        let (dec, consumed) = decode(&enc).expect("decode");
        assert_eq!(dec, vec![5, 5, 9]);
        assert_eq!(consumed, orig_len);
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 65_535, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        assert!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0).is_err());
    }

    #[test]
    fn rle_collapse_expand_roundtrip() {
        let mut symbols = vec![5u32; 100];
        symbols.extend([1, 2, 3]);
        symbols.extend(vec![9u32; 50]);
        symbols.extend([4, 4, 4]); // below MIN_RUN: kept verbatim
        let mut t = Vec::new();
        let mut runs = Vec::new();
        assert!(rle_collapse_checked(&symbols, &mut t, &mut runs));
        assert!(t.len() < symbols.len());
        assert_eq!(runs.len(), 2);
        let mut back = Vec::new();
        rle_expand_into(&t, &runs, symbols.len(), &mut back).unwrap();
        assert_eq!(back, symbols);
    }

    #[test]
    fn long_runs_compress_to_almost_nothing() {
        let symbols = vec![3u32; 1_000_000];
        let enc = encode(&symbols);
        assert!(enc.len() < 100, "run-length stream is {} bytes", enc.len());
        roundtrip(&symbols);
    }

    #[test]
    fn marker_collision_disables_rle() {
        let mut symbols = vec![u32::MAX; 64];
        symbols.extend([1, 2, 3]);
        roundtrip(&symbols);
    }

    /// A marker symbol in a *later* segment must roll back the runs already
    /// collapsed from earlier segments and store the whole block raw.
    #[test]
    fn multi_stream_marker_in_late_segment_disables_rle() {
        let mut symbols = vec![7u32; 3 * 256];
        symbols.extend(vec![9u32; 200]);
        symbols[3 * 256 + 100] = RUN_MARKER;
        let segs = crate::format::split_even(symbols.len(), 4);
        let seg_slices: Vec<&[u32]> = segs
            .iter()
            .map(|&(off, len)| &symbols[off..off + len])
            .collect();
        let enc = encode_multi(&seg_slices);
        assert_eq!(enc[9], 0, "rle byte must be off");
        let (back, consumed) = decode_multi(&enc).expect("decode");
        assert_eq!(back, symbols);
        assert_eq!(consumed, enc.len());
    }

    #[test]
    fn alternating_runs_roundtrip() {
        let mut symbols = Vec::new();
        for k in 0..50u32 {
            symbols.extend(vec![k % 3; 10 + k as usize]);
            symbols.push(1000 + k);
        }
        roundtrip(&symbols);
    }

    #[test]
    fn bitrev_involution() {
        for len in 1u8..=16 {
            for v in 0u64..(1 << len.min(10)) {
                assert_eq!(bitrev(bitrev(v, len), len), v);
            }
        }
    }

    #[test]
    fn scratch_is_reusable_across_streams() {
        let mut enc_scratch = EncodeScratch::default();
        let mut dec_scratch = DecodeScratch::default();
        let mut rng = StdRng::seed_from_u64(0xAB);
        for round in 0..8 {
            let n = 100 + round * 321;
            let symbols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..64)).collect();
            let mut enc = Vec::new();
            encode_with(&symbols, &mut enc, &mut enc_scratch);
            assert_eq!(enc, encode(&symbols), "scratch encode must be identical");
            let mut out = Vec::new();
            let consumed = decode_into(&enc, &mut out, &mut dec_scratch).unwrap();
            assert_eq!(out, symbols);
            assert_eq!(consumed, enc.len());
        }
    }

    #[test]
    fn table_threshold_paths_agree() {
        // Payloads just below/above TABLE_MIN_SYMBOLS take different decode
        // paths; both must roundtrip the same streams.
        let mut rng = StdRng::seed_from_u64(0xCD);
        for n in [
            TABLE_MIN_SYMBOLS - 1,
            TABLE_MIN_SYMBOLS,
            TABLE_MIN_SYMBOLS + 1,
        ] {
            let symbols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..33)).collect();
            roundtrip(&symbols);
        }
    }

    #[test]
    fn prop_roundtrip_random_alphabets() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..64 {
            let alphabet = rng.gen_range(1usize..400);
            let n = rng.gen_range(0usize..2000);
            let symbols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet as u32)).collect();
            let enc = encode(&symbols);
            let (dec, consumed) = decode(&enc).expect("decode");
            assert_eq!(dec, symbols);
            assert_eq!(consumed, enc.len());
        }
    }

    /// The AVX2 gather kernel (the env-selectable multi-stream arm) must
    /// decode exactly like the default interleaved scalar loop, including
    /// skewed alphabets whose long codes miss the fast table.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn prop_multi_stream_gather_kernel_matches_scalar() {
        if !errflow_tensor::simd::has_avx2() {
            eprintln!("skipping: host lacks AVX2");
            return;
        }
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for round in 0..32 {
            let n = rng.gen_range(1usize..40_000);
            let symbols: Vec<u32> = if round % 3 == 0 {
                // Geometric-ish skew: long tail of rare symbols → codes
                // beyond PEEK → gather kernel long-code re-sync path.
                (0..n)
                    .map(|_| {
                        let r: f64 = rng.gen_range(0.0..1.0);
                        (-(1.0 - r).ln() * 80.0) as u32
                    })
                    .collect()
            } else {
                (0..n).map(|_| rng.gen_range(0..500)).collect()
            };
            let segs = crate::format::split_even(n, 4);
            let seg_slices: Vec<&[u32]> = segs
                .iter()
                .map(|&(off, len)| &symbols[off..off + len])
                .collect();
            let enc = encode_multi(&seg_slices);
            let (scalar, consumed) = decode_multi(&enc).expect("scalar decode");
            assert_eq!(scalar, symbols);
            assert_eq!(consumed, enc.len());
            FORCE_GATHER.with(|f| f.set(true));
            let gathered = decode_multi(&enc).map(|(s, _)| s);
            FORCE_GATHER.with(|f| f.set(false));
            assert_eq!(gathered.expect("gather decode"), symbols, "round {round}");
        }
    }
}
