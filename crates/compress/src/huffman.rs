//! Canonical Huffman coding over `u32` symbols.
//!
//! SZ- and MGARD-class compressors turn most values into small quantization
//! codes with a highly skewed distribution; entropy coding those codes is
//! where their compression ratio comes from.  This is a self-contained
//! canonical Huffman coder: the stream stores `(symbol, code length)` pairs
//! and the payload; canonical code assignment makes decode tables cheap to
//! rebuild.
//!
//! Decoding is table-driven: a `2^13`-entry prefix table resolves every
//! code of ≤ 13 bits in one lookup (the common case by construction of
//! Huffman codes over skewed distributions); longer codes fall back to a
//! bit-by-bit canonical walk.  This path dominates decompression throughput
//! for the SZ/MGARD backends, which is what the paper's I/O figures measure.

use crate::bitstream::{BitReader, BitWriter};
use crate::traits::CompressError;
use std::collections::{BinaryHeap, HashMap};

/// Width of the fast decode table (bits).
const PEEK: u32 = 13;

/// Marker symbol standing for "a run follows" after RLE.
const RUN_MARKER: u32 = u32::MAX;

/// Minimum repeat length worth collapsing into a run.  Below this, plain
/// Huffman (≈1 bit/symbol for the dominant code) beats the marker + varint
/// overhead of a run token.
const MIN_RUN: usize = 48;

/// Reverses the low `len` bits of `v`.
#[inline]
fn bitrev(v: u64, len: u8) -> u64 {
    v.reverse_bits() >> (64 - len as u32)
}

/// Encodes a symbol sequence; returns a self-describing byte stream.
///
/// Runs of ≥ `MIN_RUN` (48) identical symbols are collapsed to a
/// `(symbol, RUN_MARKER)` pair plus an out-of-band run length, so smooth
/// data — where the quantizer emits the same code for long stretches —
/// decodes at memory speed instead of per-symbol entropy-decode speed.
/// (This is the behaviour that makes real SZ's decompression fast at loose
/// tolerances, the Fig. 7 regime.)  RLE is skipped entirely if the input
/// ever uses the marker value itself.
pub fn encode(symbols: &[u32]) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(&(symbols.len() as u64).to_le_bytes());

    let rle_ok = !symbols.contains(&RUN_MARKER);
    let (transformed, runs) = if rle_ok {
        rle_collapse(symbols)
    } else {
        (symbols.to_vec(), Vec::new())
    };
    out.push(rle_ok as u8);
    out.extend_from_slice(&(runs.len() as u32).to_le_bytes());
    for &r in &runs {
        write_varint(&mut out, r);
    }

    out.extend_from_slice(&(transformed.len() as u64).to_le_bytes());
    if transformed.is_empty() {
        out.extend_from_slice(&0u32.to_le_bytes());
        return out;
    }
    let symbols = &transformed[..];

    let lengths = code_lengths(symbols);
    let codes = canonical_codes(&lengths);
    // Pre-reverse every code: the writer emits LSB-first, so writing the
    // bit-reversed code produces the MSB-first stream order decoding needs.
    let reversed: HashMap<u32, (u64, u8)> = codes
        .iter()
        .map(|(&sym, &(code, len))| (sym, (bitrev(code, len), len)))
        .collect();

    // Header: number of distinct symbols, then (symbol, length) pairs in
    // canonical order.
    out.extend_from_slice(&(lengths.len() as u32).to_le_bytes());
    for &(sym, len) in &lengths {
        out.extend_from_slice(&sym.to_le_bytes());
        out.push(len);
    }

    let mut w = BitWriter::new();
    for s in symbols {
        let &(rev, len) = reversed.get(s).expect("symbol has a code");
        w.write_bits(rev, len as u32);
    }
    let payload = w.into_bytes();
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Collapses runs of ≥ `MIN_RUN` identical symbols.  A run of `s` with
/// length `L` becomes `[s, RUN_MARKER]` plus an out-of-band count `L − 1`.
fn rle_collapse(symbols: &[u32]) -> (Vec<u32>, Vec<u32>) {
    let mut transformed = Vec::with_capacity(symbols.len());
    let mut runs = Vec::new();
    let mut i = 0;
    while i < symbols.len() {
        let s = symbols[i];
        let mut j = i + 1;
        while j < symbols.len() && symbols[j] == s && j - i < u32::MAX as usize {
            j += 1;
        }
        let len = j - i;
        if len >= MIN_RUN {
            transformed.push(s);
            transformed.push(RUN_MARKER);
            runs.push((len - 1) as u32);
        } else {
            transformed.extend(std::iter::repeat_n(s, len));
        }
        i = j;
    }
    (transformed, runs)
}

/// Inverse of [`rle_collapse`].
fn rle_expand(
    transformed: &[u32],
    runs: &[u32],
    n_original: usize,
) -> Result<Vec<u32>, CompressError> {
    let mut out = Vec::with_capacity(crate::traits::safe_capacity(
        n_original,
        transformed.len() * 4,
    ));
    let mut run_it = runs.iter();
    for &s in transformed {
        if s == RUN_MARKER {
            let &count = run_it.next().ok_or_else(|| {
                CompressError::CorruptStream("run marker without a run length".into())
            })?;
            let &prev = out
                .last()
                .ok_or_else(|| CompressError::CorruptStream("run marker at stream start".into()))?;
            out.extend(std::iter::repeat_n(prev, count as usize));
        } else {
            out.push(s);
        }
        if out.len() > n_original {
            return Err(CompressError::CorruptStream(
                "expanded stream longer than declared".into(),
            ));
        }
    }
    if out.len() != n_original {
        return Err(CompressError::CorruptStream(format!(
            "expanded to {} symbols, expected {n_original}",
            out.len()
        )));
    }
    Ok(out)
}

/// Decodes a stream produced by [`encode`].  Returns the symbols and the
/// number of bytes consumed from `stream`.
pub fn decode(stream: &[u8]) -> Result<(Vec<u32>, usize), CompressError> {
    let mut pos = 0usize;
    let n_original = read_u64(stream, &mut pos)? as usize;
    let rle_used = *stream
        .get(pos)
        .ok_or_else(|| CompressError::CorruptStream("truncated rle flag".into()))?
        != 0;
    pos += 1;
    let n_runs = read_u32(stream, &mut pos)? as usize;
    let mut runs = Vec::with_capacity(crate::traits::safe_capacity(n_runs, stream.len()));
    for _ in 0..n_runs {
        runs.push(read_varint(stream, &mut pos)?);
    }
    let n_symbols = read_u64(stream, &mut pos)? as usize;
    let n_distinct = read_u32(stream, &mut pos)? as usize;
    if n_symbols == 0 {
        if n_original != 0 {
            return Err(CompressError::CorruptStream(
                "empty payload for nonempty stream".into(),
            ));
        }
        return Ok((Vec::new(), pos));
    }
    if n_distinct == 0 {
        return Err(CompressError::CorruptStream(
            "nonempty payload with empty alphabet".into(),
        ));
    }
    let mut lengths = Vec::with_capacity(crate::traits::safe_capacity(n_distinct, stream.len()));
    for _ in 0..n_distinct {
        let sym = read_u32(stream, &mut pos)?;
        let len = *stream
            .get(pos)
            .ok_or_else(|| CompressError::CorruptStream("truncated code table".into()))?;
        pos += 1;
        if len == 0 || len > 64 {
            return Err(CompressError::CorruptStream(format!(
                "invalid code length {len}"
            )));
        }
        if let Some(&(_, prev)) = lengths.last() {
            if len < prev {
                return Err(CompressError::CorruptStream(
                    "code table not in canonical order".into(),
                ));
            }
        }
        lengths.push((sym, len));
    }
    // Kraft check: Σ 2^(max−len) must not exceed 2^max, or the canonical
    // code assignment overflows (only possible with corrupt tables).
    {
        let max_len = lengths.last().map(|&(_, l)| l).unwrap_or(1) as u32;
        let mut kraft: u128 = 0;
        for &(_, len) in &lengths {
            kraft += 1u128 << (max_len - len as u32);
        }
        if kraft > (1u128 << max_len) {
            return Err(CompressError::CorruptStream(
                "code table violates the Kraft inequality".into(),
            ));
        }
    }
    let codes = canonical_codes(&lengths);

    // Fast table: peeked PEEK bits → (symbol, code length); len 0 = slow path.
    let mut table = vec![(0u32, 0u8); 1 << PEEK];
    // Canonical decode arrays for the slow path: for each code length,
    // the first canonical code, the number of codes, and the offset of its
    // first symbol in canonical order.  Decoding a long code is then O(1)
    // array arithmetic per length instead of a hash probe per bit.
    let mut max_len = 1u8;
    for &(_, len) in &lengths {
        max_len = max_len.max(len);
    }
    let mut first_code = vec![0u64; max_len as usize + 1];
    let mut count = vec![0u32; max_len as usize + 1];
    let mut offset = vec![0u32; max_len as usize + 1];
    {
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (i, &(_, len)) in lengths.iter().enumerate() {
            code <<= len - prev_len;
            if count[len as usize] == 0 {
                first_code[len as usize] = code;
                offset[len as usize] = i as u32;
            }
            count[len as usize] += 1;
            code += 1;
            prev_len = len;
        }
    }
    // lengths is already in canonical symbol order.
    let canonical_syms: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
    for (&sym, &(code, len)) in &codes {
        if (len as u32) <= PEEK {
            let base = bitrev(code, len) as usize;
            let step = 1usize << len;
            let mut idx = base;
            while idx < (1 << PEEK) {
                table[idx] = (sym, len);
                idx += step;
            }
        }
    }

    let payload_len = read_u64(stream, &mut pos)? as usize;
    let payload = stream
        .get(pos..pos + payload_len)
        .ok_or_else(|| CompressError::CorruptStream("truncated payload".into()))?;
    let consumed = pos + payload_len;

    let mut r = BitReader::new(payload);
    let mut out = Vec::with_capacity(crate::traits::safe_capacity(n_symbols, payload.len()));
    while out.len() < n_symbols {
        let peek = r.peek_bits_lossy(PEEK) as usize;
        let (sym, len) = table[peek];
        if len > 0 && (len as usize) <= r.remaining_bits() {
            r.skip_bits(len as u32);
            out.push(sym);
            continue;
        }
        // Slow path: long code or near end of stream — canonical decode by
        // length (O(1) per candidate length).
        let mut code = 0u64;
        let mut clen = 0usize;
        let sym = loop {
            let bit = r
                .read_bit()
                .ok_or_else(|| CompressError::CorruptStream("payload ended early".into()))?;
            code = (code << 1) | bit as u64;
            clen += 1;
            if clen > max_len as usize {
                return Err(CompressError::CorruptStream(
                    "no symbol matches the read prefix".into(),
                ));
            }
            let c = count[clen] as u64;
            if c > 0 && code >= first_code[clen] && code < first_code[clen] + c {
                let idx = offset[clen] as u64 + (code - first_code[clen]);
                break canonical_syms[idx as usize];
            }
        };
        out.push(sym);
    }
    let expanded = if rle_used {
        rle_expand(&out, &runs, n_original)?
    } else {
        if out.len() != n_original {
            return Err(CompressError::CorruptStream(format!(
                "decoded {} symbols, expected {n_original}",
                out.len()
            )));
        }
        out
    };
    Ok((expanded, consumed))
}

/// Computes Huffman code lengths from symbol frequencies, returned in
/// canonical order (ascending length, then ascending symbol).
fn code_lengths(symbols: &[u32]) -> Vec<(u32, u8)> {
    let mut freq: HashMap<u32, u64> = HashMap::new();
    for &s in symbols {
        *freq.entry(s).or_insert(0) += 1;
    }
    if freq.len() == 1 {
        let (&sym, _) = freq.iter().next().expect("one symbol");
        return vec![(sym, 1)];
    }

    // Huffman tree via a min-heap of (freq, tie, node-id).
    #[derive(PartialEq, Eq)]
    struct Item(u64, u32, usize);
    impl Ord for Item {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            // Reverse for a min-heap.
            other.0.cmp(&self.0).then(other.1.cmp(&self.1))
        }
    }
    impl PartialOrd for Item {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    enum Node {
        Leaf(u32),
        Internal(usize, usize),
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut heap = BinaryHeap::new();
    let mut sorted: Vec<(u32, u64)> = freq.into_iter().collect();
    sorted.sort_unstable();
    let mut tie = 0u32;
    for (sym, f) in sorted {
        nodes.push(Node::Leaf(sym));
        heap.push(Item(f, tie, nodes.len() - 1));
        tie += 1;
    }
    while heap.len() > 1 {
        let a = heap.pop().expect("len>1");
        let b = heap.pop().expect("len>1");
        nodes.push(Node::Internal(a.2, b.2));
        heap.push(Item(a.0 + b.0, tie, nodes.len() - 1));
        tie += 1;
    }
    let root = heap.pop().expect("nonempty").2;

    // Walk depths iteratively.
    let mut lengths: Vec<(u32, u8)> = Vec::new();
    let mut stack = vec![(root, 0u8)];
    while let Some((id, depth)) = stack.pop() {
        match nodes[id] {
            Node::Leaf(sym) => lengths.push((sym, depth.max(1))),
            Node::Internal(l, r) => {
                stack.push((l, depth + 1));
                stack.push((r, depth + 1));
            }
        }
    }
    lengths.sort_unstable_by_key(|&(sym, len)| (len, sym));
    lengths
}

/// Assigns canonical codes given `(symbol, length)` pairs in canonical order.
fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, (u64, u8)> {
    let mut codes = HashMap::with_capacity(lengths.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(sym, len) in lengths {
        code <<= len - prev_len;
        codes.insert(sym, (code, len));
        code += 1;
        prev_len = len;
    }
    codes
}

/// LEB128 varint encoding for run lengths.
fn write_varint(out: &mut Vec<u8>, mut v: u32) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// LEB128 varint decoding.
fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| CompressError::CorruptStream("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 35 {
            return Err(CompressError::CorruptStream("varint overflow".into()));
        }
    }
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let bytes = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| CompressError::CorruptStream("truncated u64".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let bytes = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| CompressError::CorruptStream("truncated u32".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_tensor::rng::StdRng;

    fn roundtrip(symbols: &[u32]) {
        let enc = encode(symbols);
        let (dec, consumed) = decode(&enc).expect("decode");
        assert_eq!(dec, symbols);
        assert_eq!(consumed, enc.len());
    }

    #[test]
    fn empty_roundtrip() {
        roundtrip(&[]);
    }

    #[test]
    fn single_symbol_roundtrip() {
        roundtrip(&[7; 100]);
    }

    #[test]
    fn two_symbols_roundtrip() {
        roundtrip(&[0, 1, 0, 0, 1, 0, 1, 1, 1, 0]);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% zeros: entropy ≈ 0.29 bits/symbol; Huffman ≈ 1 bit/symbol max,
        // still far below 32.
        let mut rng = StdRng::seed_from_u64(1);
        let symbols: Vec<u32> = (0..10_000)
            .map(|_| {
                if rng.gen_bool(0.95) {
                    0
                } else {
                    rng.gen_range(1..8)
                }
            })
            .collect();
        let enc = encode(&symbols);
        assert!(
            enc.len() < symbols.len() * 4 / 8,
            "compressed {} vs raw {}",
            enc.len(),
            symbols.len() * 4
        );
        roundtrip(&symbols);
    }

    #[test]
    fn uniform_random_roundtrip() {
        let mut rng = StdRng::seed_from_u64(2);
        let symbols: Vec<u32> = (0..5_000).map(|_| rng.gen_range(0..1000)).collect();
        roundtrip(&symbols);
    }

    #[test]
    fn long_codes_take_slow_path() {
        // A heavily skewed geometric-ish distribution over many symbols
        // produces code lengths well beyond the 12-bit fast table.
        let mut symbols = Vec::new();
        for sym in 0u32..24 {
            let count = 1usize << (24 - sym).min(16);
            symbols.extend(std::iter::repeat(sym).take(count));
        }
        roundtrip(&symbols);
    }

    #[test]
    fn large_symbol_values_roundtrip() {
        roundtrip(&[u32::MAX, 0, u32::MAX - 1, 12345678, u32::MAX]);
    }

    #[test]
    fn truncated_stream_errors() {
        let enc = encode(&[1, 2, 3, 1, 2, 3]);
        assert!(decode(&enc[..enc.len() - 1]).is_err());
        assert!(decode(&enc[..4]).is_err());
        assert!(decode(&[]).is_err());
    }

    #[test]
    fn decode_reports_consumed_bytes_with_trailing_data() {
        let mut enc = encode(&[5, 5, 9]);
        let orig_len = enc.len();
        enc.extend_from_slice(&[0xab; 10]);
        let (dec, consumed) = decode(&enc).expect("decode");
        assert_eq!(dec, vec![5, 5, 9]);
        assert_eq!(consumed, orig_len);
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let lengths = vec![(10u32, 2u8), (20, 2), (30, 3), (40, 3)];
        let codes = canonical_codes(&lengths);
        let all: Vec<(u64, u8)> = codes.values().copied().collect();
        for (i, &(c1, l1)) in all.iter().enumerate() {
            for &(c2, l2) in &all[i + 1..] {
                let (short, slen, long, llen) = if l1 <= l2 {
                    (c1, l1, c2, l2)
                } else {
                    (c2, l2, c1, l1)
                };
                if slen == llen {
                    assert_ne!(short, long);
                } else {
                    assert_ne!(short, long >> (llen - slen), "prefix violation");
                }
            }
        }
    }

    #[test]
    fn varint_roundtrip() {
        for v in [0u32, 1, 127, 128, 300, 65_535, u32::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
        assert!(read_varint(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], &mut 0).is_err());
    }

    #[test]
    fn rle_collapse_expand_roundtrip() {
        let mut symbols = vec![5u32; 100];
        symbols.extend([1, 2, 3]);
        symbols.extend(vec![9u32; 50]);
        symbols.extend([4, 4, 4]); // below MIN_RUN: kept verbatim
        let (t, runs) = rle_collapse(&symbols);
        assert!(t.len() < symbols.len());
        assert_eq!(runs.len(), 2);
        let back = rle_expand(&t, &runs, symbols.len()).unwrap();
        assert_eq!(back, symbols);
    }

    #[test]
    fn long_runs_compress_to_almost_nothing() {
        let symbols = vec![3u32; 1_000_000];
        let enc = encode(&symbols);
        assert!(enc.len() < 100, "run-length stream is {} bytes", enc.len());
        roundtrip(&symbols);
    }

    #[test]
    fn marker_collision_disables_rle() {
        let mut symbols = vec![u32::MAX; 64];
        symbols.extend([1, 2, 3]);
        roundtrip(&symbols);
    }

    #[test]
    fn alternating_runs_roundtrip() {
        let mut symbols = Vec::new();
        for k in 0..50u32 {
            symbols.extend(vec![k % 3; 10 + k as usize]);
            symbols.push(1000 + k);
        }
        roundtrip(&symbols);
    }

    #[test]
    fn bitrev_involution() {
        for len in 1u8..=16 {
            for v in 0u64..(1 << len.min(10)) {
                assert_eq!(bitrev(bitrev(v, len), len), v);
            }
        }
    }

    #[test]
    fn prop_roundtrip_random_alphabets() {
        let mut rng = StdRng::seed_from_u64(0xC0FFEE);
        for _ in 0..64 {
            let alphabet = rng.gen_range(1usize..400);
            let n = rng.gen_range(0usize..2000);
            let symbols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet as u32)).collect();
            let enc = encode(&symbols);
            let (dec, consumed) = decode(&enc).expect("decode");
            assert_eq!(dec, symbols);
            assert_eq!(consumed, enc.len());
        }
    }
}
