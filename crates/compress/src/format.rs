//! Versioned stream-format constants and helpers for the v2 interleaved
//! layout.
//!
//! **v1** streams (the seed format, frozen in [`crate::reference`]) encode
//! one serial entropy/bit stream per payload: decode throughput is capped
//! by the single symbol-to-symbol dependency chain.  **v2** streams split
//! each payload into [`V2_STREAMS`] independently-decodable sub-streams so
//! the decoder can run several dependency chains at once — interleaved
//! scalar chains on portable hosts, gather-based AVX2 lanes where
//! available (see `huffman_simd` / `zfp_simd`).
//!
//! A v2 stream opens with [`MAGIC_V2`]: eight bytes whose top byte is
//! `0xBF`, so reinterpreted as the little-endian `u64` element count that
//! opens every v1 header it exceeds `2^63` — no decodable v1 stream can
//! collide (v1 counts are bounded by payload size long before that), and
//! v1 decoders reject such a count as implausible rather than misparsing.
//! The byte after the magic tags the backend, so a ZFP v2 stream handed to
//! the SZ decoder fails with a typed error instead of being misread.

use crate::traits::CompressError;

/// v2 stream magic: `b"EFv2"` plus three discriminator bytes and a high
/// byte ≥ `0x80` (see module docs for why the high byte matters).
pub const MAGIC_V2: [u8; 8] = *b"EFv2\x9e\xad\xf5\xbf";

/// Sub-streams per v2 payload.  Four matches both the AVX2 kernels' lane
/// width (4 × 64-bit bit-windows per ymm register) and the ILP sweet spot
/// of the interleaved scalar fallback; it is recorded per stream, so the
/// constant can change without invalidating old v2 streams.
pub const V2_STREAMS: usize = 4;

/// Upper bound on the per-stream sub-stream count a decoder will accept.
/// Caps scratch fan-out on forged headers.
pub const MAX_STREAMS: usize = 16;

/// Backend tag byte following the magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendTag {
    /// SZ-class predictor/quantizer stream.
    Sz = 1,
    /// ZFP-class block stream.
    Zfp = 2,
}

/// `true` when `stream` opens with the v2 magic.
pub fn is_v2(stream: &[u8]) -> bool {
    stream.len() >= 8 && stream[..8] == MAGIC_V2
}

/// Parses the fixed v2 preamble (magic, backend tag, sub-stream count),
/// advancing `pos` past it.  The caller has already checked [`is_v2`];
/// this validates the tag and bounds the stream count.
pub fn read_preamble(
    stream: &[u8],
    pos: &mut usize,
    expect: BackendTag,
) -> Result<usize, CompressError> {
    *pos += 8; // magic, checked by `is_v2`
    let tag = crate::traits::read_u8(stream, pos, "v2 backend tag")?;
    if tag != expect as u8 {
        return Err(CompressError::CorruptStream(format!(
            "v2 stream tagged for backend {tag}, expected {}",
            expect as u8
        )));
    }
    let s = crate::traits::read_u8(stream, pos, "v2 stream count")? as usize;
    if s == 0 || s > MAX_STREAMS {
        return Err(CompressError::CorruptStream(format!(
            "v2 sub-stream count {s} outside 1..={MAX_STREAMS}"
        )));
    }
    Ok(s)
}

/// Writes the fixed v2 preamble.
pub fn write_preamble(out: &mut Vec<u8>, tag: BackendTag, n_streams: usize) {
    debug_assert!(n_streams >= 1 && n_streams <= MAX_STREAMS);
    out.extend_from_slice(&MAGIC_V2);
    out.push(tag as u8);
    out.push(n_streams as u8);
}

/// Appends `vals` as little-endian `f32` bytes in bulk.  Per-value
/// `extend_from_slice(&v.to_le_bytes())` pays Vec bookkeeping on every
/// element; staging through a fixed stack buffer amortizes that to one
/// append per 64 values, which matters for the outlier-storm streams
/// tight error bounds produce (nearly every value verbatim).
pub fn write_f32_table(out: &mut Vec<u8>, vals: &[f32]) {
    out.reserve(4 * vals.len());
    let mut buf = [0u8; 4 * 64];
    for chunk in vals.chunks(64) {
        for (dst, v) in buf.chunks_exact_mut(4).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        out.extend_from_slice(&buf[..4 * chunk.len()]);
    }
}

/// Bulk little-endian `f32` read, the inverse of [`write_f32_table`]:
/// fills `out` from exactly `4 * out.len()` bytes.  The per-element
/// `from_le_bytes` loop vectorizes to a straight copy on LE hosts.
pub fn read_f32_table(bytes: &[u8], out: &mut [f32]) {
    debug_assert_eq!(bytes.len(), 4 * out.len());
    for (slot, b) in out.iter_mut().zip(bytes.chunks_exact(4)) {
        *slot = f32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    }
}

/// Splits `n` items into `s` contiguous segments whose lengths differ by at
/// most one (the first `n % s` segments get the extra item).  Returns
/// `(offset, len)` per segment; segments may be empty when `n < s`.
///
/// Both encoder and decoder derive the segmentation from `(n, s)` alone, so
/// the split never needs to be serialized — headers still declare the
/// per-segment counts and the decoder cross-checks them against this
/// function, making a forged header a typed error rather than a skew.
pub fn split_even(n: usize, s: usize) -> Vec<(usize, usize)> {
    debug_assert!(s >= 1);
    let base = n / s;
    let extra = n % s;
    let mut out = Vec::with_capacity(s);
    let mut off = 0usize;
    for i in 0..s {
        let len = base + usize::from(i < extra);
        out.push((off, len));
        off += len;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_exceeds_any_plausible_v1_count() {
        let as_count = u64::from_le_bytes(MAGIC_V2);
        assert!(as_count > 1 << 63);
    }

    #[test]
    fn split_even_covers_exactly() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 65_536, 1_000_003] {
            for s in [1usize, 2, 3, 4, 8] {
                let parts = split_even(n, s);
                assert_eq!(parts.len(), s);
                let mut off = 0;
                for &(o, l) in &parts {
                    assert_eq!(o, off);
                    off += l;
                }
                assert_eq!(off, n);
                let lens: Vec<usize> = parts.iter().map(|&(_, l)| l).collect();
                let max = lens.iter().max().copied().unwrap_or(0);
                let min = lens.iter().min().copied().unwrap_or(0);
                assert!(max - min <= 1, "n={n} s={s} lens={lens:?}");
            }
        }
    }

    #[test]
    fn preamble_roundtrip_and_rejections() {
        let mut buf = Vec::new();
        write_preamble(&mut buf, BackendTag::Sz, V2_STREAMS);
        assert!(is_v2(&buf));
        let mut pos = 0;
        assert_eq!(
            read_preamble(&buf, &mut pos, BackendTag::Sz).unwrap(),
            V2_STREAMS
        );
        assert_eq!(pos, 10);
        // Wrong backend tag.
        let mut pos = 0;
        assert!(read_preamble(&buf, &mut pos, BackendTag::Zfp).is_err());
        // Zero / oversized stream counts.
        for bad in [0usize, MAX_STREAMS + 1] {
            let mut buf = Vec::new();
            buf.extend_from_slice(&MAGIC_V2);
            buf.push(BackendTag::Sz as u8);
            buf.push(bad as u8);
            let mut pos = 0;
            assert!(read_preamble(&buf, &mut pos, BackendTag::Sz).is_err());
        }
        assert!(!is_v2(&[1, 2, 3]));
        assert!(!is_v2(b"EFv1\x9e\xad\xf5\xbf"));
    }
}
