//! # errflow-compress
//!
//! Error-bounded lossy compressors built from scratch, one per algorithm
//! class the paper evaluates (§IV-A):
//!
//! * [`SzCompressor`] — SZ-class: value prediction (Lorenzo / linear
//!   extrapolation) + error-bounded linear quantization + Huffman coding.
//!   High ratios on smooth HPC fields; decompression pays the entropy-decode
//!   cost (the Fig. 7 dip at tight tolerances).
//! * [`ZfpCompressor`] — ZFP-class: fixed 4-sample blocks, a reversible
//!   decorrelating lifting transform, and embedded bit-plane coding with a
//!   fixed-accuracy cutoff.  Fast and flat across tolerances; **does not
//!   support an L2 tolerance** (same restriction the paper notes for
//!   Figs. 8, 12, 14).
//! * [`MgardCompressor`] — MGARD-class: multilevel (multigrid) hierarchical
//!   decomposition with per-level error budgeting and entropy coding.
//!
//! All compressors implement [`Compressor`] and honour the same contract:
//! given an [`ErrorBound`], the reconstruction error never exceeds the
//! requested tolerance (property-tested in each module and in the
//! workspace-level integration suite).

pub mod bitstream;
pub mod chunked;
pub mod error_bound;
pub mod format;
pub mod huffman;
mod huffman_simd;
pub mod metrics;
pub mod mgard;
pub mod reference;
pub mod scratch;
pub mod sz;
pub mod sz2d;
pub mod traits;
pub mod zfp;
mod zfp_simd;

pub use chunked::ChunkedCompressor;
pub use error_bound::{BoundMode, ErrorBound};
pub use metrics::CompressionStats;
pub use mgard::MgardCompressor;
pub use scratch::CodecScratch;
pub use sz::SzCompressor;
pub use sz2d::Sz2dCompressor;
pub use traits::{CompressError, Compressor, DecodeUnit};
pub use zfp::ZfpCompressor;

/// All three compressor backends, boxed, for sweep experiments.
pub fn all_backends() -> Vec<Box<dyn Compressor>> {
    vec![
        Box::new(ZfpCompressor::default()),
        Box::new(SzCompressor::default()),
        Box::new(MgardCompressor),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_backends_lists_three() {
        let b = all_backends();
        assert_eq!(b.len(), 3);
        let names: Vec<&str> = b.iter().map(|c| c.name()).collect();
        assert_eq!(names, vec!["zfp", "sz", "mgard"]);
    }
}
