//! Chunked-parallel compression: the multi-core decompression real HPC
//! deployments use.
//!
//! The paper's I/O numbers assume decompression keeps up with a parallel
//! filesystem, which production compressors achieve by splitting data into
//! independently-coded chunks and decoding them on all cores.
//! [`ChunkedCompressor`] wraps any [`Compressor`] backend: the payload is
//! split into fixed-size chunks, each compressed independently (error
//! bounds are resolved to a *pointwise* budget over the whole payload
//! first, so per-chunk compression still honours the global bound), and
//! decompression fans the chunks out on the shared workspace thread pool
//! ([`errflow_tensor::pool`]) — no threads are spawned per call, and the
//! configured `threads` limit caps this job's concurrency without
//! starving other pool users.

//! Decompression is allocation-free per chunk in the steady state: the
//! output buffer is pre-sized once, split into disjoint per-chunk slices,
//! and each worker decodes straight into its slice through a pooled
//! [`CodecScratch`](crate::CodecScratch) — no per-chunk `Vec`s and no
//! reassembly copies.  Streams whose headers don't match the canonical
//! chunk layout fall back to the original collect-then-concatenate path,
//! so accepted-stream behaviour is unchanged.

use crate::error_bound::{BoundMode, ErrorBound};
use crate::scratch::{self, CodecScratch};
use crate::traits::{CompressError, Compressor, DecodeUnit};
use std::sync::Mutex;

/// [`DecodeUnit::tag`] marking a unit as one inner chunk stream (decoded
/// through the wrapped backend); tag `0` keeps the trait default meaning of
/// "whole container" for the non-canonical fallback.
const UNIT_CHUNK: u8 = 1;

/// Default chunk size in values (256 KiB of f32).
pub const DEFAULT_CHUNK: usize = 65_536;

/// The pre-sized decode path only trusts a header-declared element count
/// up to this many values (bounds the up-front allocation at 256 MiB).
const PRESIZE_MAX_VALUES: usize = 1 << 26;

/// ... and only when the declared count stays within this expansion factor
/// of the stream itself.  Fully run-length-collapsed chunks reach ≈ 1000
/// values per stream byte, so 4096× leaves real streams comfortable margin
/// while keeping corrupt-header allocations proportional to input size.
const PRESIZE_MAX_RATIO: usize = 4096;

/// A parallel, chunked wrapper around any compression backend.
pub struct ChunkedCompressor<C> {
    inner: C,
    chunk_values: usize,
    threads: usize,
}

impl<C: Compressor> ChunkedCompressor<C> {
    /// Wraps `inner` with the default chunk size and a thread count sized
    /// for throughput: the shared pool's concurrency (which honours the
    /// `ERRFLOW_THREADS` override, so one env knob governs every parallel
    /// path) clamped to the machine's real parallelism.  The clamp matters
    /// on small hosts — the pool floors itself at 4 threads to keep
    /// concurrency paths exercised, but fanning a decode out 4-wide on a
    /// 1-core box measures pure oversubscription (the flat 1.09× chunked
    /// scaling recorded in `BENCH_compress.json`).
    pub fn new(inner: C) -> Self {
        ChunkedCompressor {
            inner,
            chunk_values: DEFAULT_CHUNK,
            threads: errflow_tensor::pool::global()
                .max_concurrency()
                .min(errflow_tensor::pool::hardware_threads())
                .max(1),
        }
    }

    /// Overrides the chunk size (in values).
    pub fn with_chunk_values(mut self, chunk_values: usize) -> Self {
        assert!(chunk_values > 0, "chunk size must be nonzero");
        self.chunk_values = chunk_values;
        self
    }

    /// Overrides the worker count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        self.threads = threads;
        self
    }

    /// Resolves a (possibly relative / L2) bound on the whole payload to a
    /// pointwise absolute bound that each chunk can enforce independently.
    fn chunk_bound(&self, data: &[f32], bound: &ErrorBound) -> ErrorBound {
        match bound.mode {
            BoundMode::AbsLInf => *bound,
            _ => ErrorBound::abs_linf(bound.pointwise_budget(data)),
        }
    }

    /// Decodes every chunk into its disjoint slice of `out` (already split
    /// to the canonical layout), fanning out on the shared pool with pooled
    /// scratch per task.  Any chunk error aborts with the first error.
    fn decompress_presized(
        &self,
        slices: &[&[u8]],
        expected: &[usize],
        out: &mut [f32],
    ) -> Result<(), CompressError> {
        debug_assert_eq!(slices.len(), expected.len());
        debug_assert_eq!(expected.iter().sum::<usize>(), out.len());
        let mut parts: Vec<(&[u8], &mut [f32])> = Vec::with_capacity(slices.len());
        let mut rest = out;
        for (&s, &len) in slices.iter().zip(expected) {
            let (head, tail) = rest.split_at_mut(len);
            rest = tail;
            parts.push((s, head));
        }
        if self.threads <= 1 || parts.len() <= 1 {
            for (s, dst) in parts {
                let mut scratch = scratch::acquire();
                self.inner.decompress_into(s, dst, &mut scratch)?;
            }
            return Ok(());
        }
        let cells: Vec<Mutex<Option<(&[u8], &mut [f32])>>> =
            parts.into_iter().map(|p| Mutex::new(Some(p))).collect();
        let first_err: Mutex<Option<CompressError>> = Mutex::new(None);
        errflow_tensor::pool::global().parallel_for(cells.len(), self.threads, |i| {
            let taken = errflow_tensor::sync::lock_recover(&cells[i]).take();
            if let Some((s, dst)) = taken {
                let mut scratch = scratch::acquire();
                if let Err(e) = self.inner.decompress_into(s, dst, &mut scratch) {
                    errflow_tensor::sync::lock_recover(&first_err).get_or_insert(e);
                }
            }
        });
        match first_err
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

/// Per-chunk element counts for the canonical layout `compress` produces:
/// `n_chunks == ⌈n / chunk_values⌉` full chunks with a short tail.  `None`
/// when the header doesn't match that layout (the caller then takes the
/// legacy concatenation path, preserving old behaviour for non-canonical
/// streams).
fn chunk_layout(n: usize, chunk_values: usize, n_chunks: usize) -> Option<Vec<usize>> {
    if n == 0 {
        return (n_chunks == 0).then(Vec::new);
    }
    if chunk_values == 0 || n_chunks != n.div_ceil(chunk_values) {
        return None;
    }
    Some(
        (0..n_chunks)
            .map(|i| chunk_values.min(n - i * chunk_values))
            .collect(),
    )
}

impl<C: Compressor> Compressor for ChunkedCompressor<C> {
    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn supports(&self, bound: &ErrorBound) -> bool {
        // The pointwise resolution handles every mode, but only if the
        // inner backend takes pointwise bounds (all of ours do).
        self.inner.supports(&ErrorBound::abs_linf(bound.tolerance)) || self.inner.supports(bound)
    }

    fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
        let _span = errflow_obs::trace::span("codec.chunked.compress");
        crate::traits::check_tolerance(bound.tolerance)?;
        let per_chunk = self.chunk_bound(data, bound);
        let chunks: Vec<&[f32]> = data.chunks(self.chunk_values.max(1)).collect();
        let streams = run_parallel(self.threads, &chunks, |chunk| {
            self.inner.compress(chunk, &per_chunk)
        })?;

        // Exact container size is known up front — one allocation, no
        // doubling reallocs while concatenating multi-MB chunk streams.
        let total: usize = streams.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(20 + 8 * streams.len() + total);
        out.extend_from_slice(&(data.len() as u64).to_le_bytes());
        out.extend_from_slice(&(self.chunk_values as u64).to_le_bytes());
        out.extend_from_slice(&(streams.len() as u32).to_le_bytes());
        for s in &streams {
            out.extend_from_slice(&(s.len() as u64).to_le_bytes());
        }
        for s in &streams {
            out.extend_from_slice(s);
        }
        Ok(out)
    }

    fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
        let _span = errflow_obs::trace::span("codec.chunked.decompress");
        let (n, chunk_values, slices) = parse_chunk_stream(stream)?;

        // Fast path: the header matches the canonical layout `compress`
        // emits and the declared count is plausible for the stream size, so
        // the output can be pre-sized once and every chunk decoded straight
        // into its slice with pooled scratch — no per-chunk Vecs, no
        // reassembly copy.  Any failure falls through to the legacy path so
        // accept/reject behaviour (and error text) is unchanged.
        if n <= PRESIZE_MAX_VALUES && n <= stream.len().saturating_mul(PRESIZE_MAX_RATIO) {
            if let Some(expected) = chunk_layout(n, chunk_values, slices.len()) {
                let mut out = vec![0.0f32; n];
                if self
                    .decompress_presized(&slices, &expected, &mut out)
                    .is_ok()
                {
                    return Ok(out);
                }
            }
        }

        let parts = run_parallel(self.threads, &slices, |s| self.inner.decompress(s))?;
        let mut out = Vec::with_capacity(crate::traits::safe_capacity(n, stream.len()));
        for p in parts {
            out.extend_from_slice(&p);
        }
        if out.len() != n {
            return Err(CompressError::CorruptStream(format!(
                "chunks reassembled to {} values, expected {n}",
                out.len()
            )));
        }
        Ok(out)
    }

    fn decompress_into(
        &self,
        stream: &[u8],
        out: &mut [f32],
        _scratch: &mut CodecScratch,
    ) -> Result<(), CompressError> {
        let (n, chunk_values, slices) = parse_chunk_stream(stream)?;
        if n != out.len() {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {}",
                out.len()
            )));
        }
        if let Some(expected) = chunk_layout(n, chunk_values, slices.len()) {
            if self.decompress_presized(&slices, &expected, out).is_ok() {
                return Ok(());
            }
        }
        // Non-canonical layout or a chunk failed in place: redo via the
        // legacy path so errors match `decompress` exactly (the output
        // buffer may hold partial data from the failed attempt, which the
        // full rewrite below repairs on success).
        let v = self.decompress(stream)?;
        out.copy_from_slice(&v);
        Ok(())
    }

    /// Exposes the container's chunks as units so callers can fan a batch
    /// of payloads out jointly.  Non-canonical containers come back as one
    /// whole-container unit (tag 0 → the wrapper's own `decompress_into`).
    fn decode_units<'a>(
        &self,
        stream: &'a [u8],
        expected_len: usize,
    ) -> Result<Vec<DecodeUnit<'a>>, CompressError> {
        let (n, chunk_values, slices) = parse_chunk_stream(stream)?;
        if n != expected_len {
            return Err(CompressError::CorruptStream(format!(
                "stream declares {n} values, expected {expected_len}"
            )));
        }
        if let Some(expected) = chunk_layout(n, chunk_values, slices.len()) {
            let mut offset = 0usize;
            return Ok(slices
                .iter()
                .zip(&expected)
                .map(|(&s, &len)| {
                    let unit = DecodeUnit {
                        stream: s,
                        offset,
                        len,
                        tag: UNIT_CHUNK,
                    };
                    offset += len;
                    unit
                })
                .collect());
        }
        Ok(vec![DecodeUnit {
            stream,
            offset: 0,
            len: n,
            tag: 0,
        }])
    }

    fn decode_unit_into(
        &self,
        unit: &DecodeUnit<'_>,
        out: &mut [f32],
        scratch: &mut CodecScratch,
    ) -> Result<(), CompressError> {
        debug_assert_eq!(unit.len, out.len(), "unit/output length mismatch");
        if unit.tag == UNIT_CHUNK {
            self.inner.decompress_into(unit.stream, out, scratch)
        } else {
            self.decompress_into(unit.stream, out, scratch)
        }
    }
}

/// Parses the chunked container header, returning the declared element
/// count, the declared chunk size, and the per-chunk byte slices.
#[allow(clippy::type_complexity)]
fn parse_chunk_stream(stream: &[u8]) -> Result<(usize, usize, Vec<&[u8]>), CompressError> {
    let mut pos = 0usize;
    let n = crate::traits::read_len_u64(stream, &mut pos, "element count")?;
    let chunk_values = crate::traits::read_len_u64(stream, &mut pos, "chunk size")?;
    let n_chunks = crate::traits::read_len_u32(stream, &mut pos, "chunk count")?;
    // Every chunk costs an 8-byte table entry: reject forged counts before
    // reserving anything.
    if n_chunks
        .checked_mul(8)
        .is_none_or(|bytes| bytes > stream.len() - pos)
    {
        return Err(CompressError::CorruptStream(
            "declared chunk table exceeds stream length".into(),
        ));
    }
    let mut lens = Vec::with_capacity(crate::traits::safe_capacity(n_chunks, stream.len()));
    for _ in 0..n_chunks {
        lens.push(crate::traits::read_len_u64(
            stream,
            &mut pos,
            "chunk length",
        )?);
    }
    let mut slices = Vec::with_capacity(crate::traits::safe_capacity(n_chunks, stream.len()));
    for &len in &lens {
        let s = stream
            .get(pos..)
            .and_then(|rest| rest.get(..len))
            .ok_or_else(|| CompressError::CorruptStream("truncated chunk".into()))?;
        pos += len;
        slices.push(s);
    }
    Ok((n, chunk_values, slices))
}

/// Maps `f` over `items` with at most `threads` concurrent workers,
/// preserving order.
///
/// Runs on the shared workspace pool ([`errflow_tensor::pool::global`])
/// rather than spawning threads per call; the submitting thread
/// participates, so `threads` is the total concurrency cap for this job
/// (enforced by the pool even when other jobs are queued).
fn run_parallel<I: Sync, O: Send>(
    threads: usize,
    items: &[I],
    f: impl Fn(&I) -> Result<O, CompressError> + Sync,
) -> Result<Vec<O>, CompressError> {
    if threads <= 1 || items.len() <= 1 {
        return items.iter().map(&f).collect();
    }
    let mut results: Vec<Option<Result<O, CompressError>>> =
        (0..items.len()).map(|_| None).collect();
    let results_mutex = std::sync::Mutex::new(&mut results);
    errflow_tensor::pool::global().parallel_for(items.len(), threads, |i| {
        let r = f(&items[i]);
        errflow_tensor::sync::lock_recover(&results_mutex)[i] = Some(r);
    });
    results
        .into_iter()
        .map(|r| {
            // `parallel_for` returns only after every index ran; a missing
            // slot means a task died, which surfaces as a decode error
            // rather than a panic.
            r.unwrap_or_else(|| {
                Err(CompressError::CorruptStream(
                    "internal: parallel chunk task did not complete".into(),
                ))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MgardCompressor, SzCompressor, ZfpCompressor};

    fn smooth(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.003).sin() * 3.0 + 0.2 * ((i as f32) * 0.041).cos())
            .collect()
    }

    #[test]
    fn roundtrip_matches_bound_for_all_backends() {
        let data = smooth(300_000);
        let bound = ErrorBound::abs_linf(1e-4);
        let backends: Vec<Box<dyn Compressor>> = vec![
            Box::new(ChunkedCompressor::new(SzCompressor::default())),
            Box::new(ChunkedCompressor::new(ZfpCompressor::default())),
            Box::new(ChunkedCompressor::new(MgardCompressor::default())),
        ];
        for be in &backends {
            let recon = be.decompress(&be.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon), "{}", be.name());
        }
    }

    #[test]
    fn relative_and_l2_bounds_resolved_globally() {
        let data = smooth(100_000);
        let c = ChunkedCompressor::new(SzCompressor::default());
        for bound in [ErrorBound::rel_linf(1e-4), ErrorBound::abs_l2(1e-2)] {
            let recon = c.decompress(&c.compress(&data, &bound).unwrap()).unwrap();
            assert!(bound.verify(&data, &recon), "{bound:?}");
        }
    }

    #[test]
    fn parallel_matches_serial_output_values() {
        let data = smooth(200_000);
        let bound = ErrorBound::abs_linf(1e-5);
        let serial = ChunkedCompressor::new(SzCompressor::default()).with_threads(1);
        let parallel = ChunkedCompressor::new(SzCompressor::default()).with_threads(4);
        let s1 = serial.compress(&data, &bound).unwrap();
        let s2 = parallel.compress(&data, &bound).unwrap();
        assert_eq!(s1, s2, "chunked streams must be deterministic");
        assert_eq!(
            serial.decompress(&s1).unwrap(),
            parallel.decompress(&s2).unwrap()
        );
    }

    #[test]
    fn small_inputs_and_odd_sizes() {
        let c = ChunkedCompressor::new(ZfpCompressor::default()).with_chunk_values(7);
        let bound = ErrorBound::abs_linf(1e-3);
        for n in [0usize, 1, 6, 7, 8, 20] {
            let data = smooth(n);
            let recon = c.decompress(&c.compress(&data, &bound).unwrap()).unwrap();
            assert_eq!(recon.len(), n);
            assert!(bound.verify(&data, &recon), "n={n}");
        }
    }

    #[test]
    fn corrupt_stream_rejected() {
        let c = ChunkedCompressor::new(SzCompressor::default());
        assert!(c.decompress(&[0; 5]).is_err());
        let data = smooth(10_000);
        let stream = c.compress(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
        assert!(c.decompress(&stream[..stream.len() - 4]).is_err());
    }

    #[test]
    fn ratio_overhead_is_modest() {
        // Chunking costs headers; on a large payload the ratio should stay
        // within ~20% of the unchunked backend.
        let data = smooth(500_000);
        let bound = ErrorBound::abs_linf(1e-3);
        let flat = SzCompressor::default().compress(&data, &bound).unwrap();
        let chunked = ChunkedCompressor::new(SzCompressor::default())
            .compress(&data, &bound)
            .unwrap();
        let overhead = chunked.len() as f64 / flat.len() as f64;
        assert!(overhead < 1.25, "chunking overhead {overhead:.2}x");
    }

    /// Backend that records the peak number of simultaneously-running
    /// compress/decompress calls, so the thread cap can be asserted.
    struct ConcurrencyProbe {
        inner: SzCompressor,
        active: std::sync::atomic::AtomicUsize,
        peak: std::sync::atomic::AtomicUsize,
    }

    impl ConcurrencyProbe {
        fn new() -> Self {
            ConcurrencyProbe {
                inner: SzCompressor::default(),
                active: std::sync::atomic::AtomicUsize::new(0),
                peak: std::sync::atomic::AtomicUsize::new(0),
            }
        }

        fn enter(&self) {
            use std::sync::atomic::Ordering;
            let now = self.active.fetch_add(1, Ordering::SeqCst) + 1;
            self.peak.fetch_max(now, Ordering::SeqCst);
            // Hold the slot long enough that overlapping calls would be
            // observed if the cap were violated.
            std::thread::sleep(std::time::Duration::from_millis(2));
        }

        fn exit(&self) {
            self.active
                .fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        }
    }

    impl Compressor for &ConcurrencyProbe {
        fn name(&self) -> &'static str {
            "concurrency-probe"
        }

        fn supports(&self, bound: &ErrorBound) -> bool {
            self.inner.supports(bound)
        }

        fn compress(&self, data: &[f32], bound: &ErrorBound) -> Result<Vec<u8>, CompressError> {
            self.enter();
            let r = self.inner.compress(data, bound);
            self.exit();
            r
        }

        fn decompress(&self, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
            self.enter();
            let r = self.inner.decompress(stream);
            self.exit();
            r
        }
    }

    #[test]
    fn worker_count_never_exceeds_configured_limit() {
        let probe = ConcurrencyProbe::new();
        let c = ChunkedCompressor::new(&probe)
            .with_chunk_values(4_096)
            .with_threads(2);
        let data = smooth(120_000); // ~30 chunks
        let bound = ErrorBound::abs_linf(1e-4);
        let stream = c.compress(&data, &bound).unwrap();
        let recon = c.decompress(&stream).unwrap();
        assert!(bound.verify(&data, &recon));
        let peak = probe.peak.load(std::sync::atomic::Ordering::SeqCst);
        assert!(peak >= 1, "probe never ran");
        assert!(
            peak <= 2,
            "observed {peak} concurrent backend calls with threads=2"
        );
    }

    #[test]
    fn default_threads_follow_shared_pool_clamped_to_hardware() {
        // `new()` derives its worker count from the shared workspace pool
        // (ERRFLOW_THREADS-aware) but clamps to the machine's real
        // parallelism: the pool's 4-thread exercise floor must not make a
        // 1-core host fan decodes out 4-wide (that oversubscription was
        // the flat 1.09× chunked scaling in BENCH_compress.json).
        let c = ChunkedCompressor::new(SzCompressor::default());
        let pool_cap = errflow_tensor::pool::global().max_concurrency();
        let hw = errflow_tensor::pool::hardware_threads();
        assert_eq!(c.threads, pool_cap.min(hw).max(1));
        assert!(c.threads <= pool_cap);
    }

    #[test]
    fn decompress_into_matches_decompress() {
        let data = smooth(150_000);
        let bound = ErrorBound::abs_linf(1e-4);
        let c = ChunkedCompressor::new(MgardCompressor::default());
        let stream = c.compress(&data, &bound).unwrap();
        let via_vec = c.decompress(&stream).unwrap();
        let mut via_into = vec![0.0f32; data.len()];
        let mut scratch = CodecScratch::new();
        c.decompress_into(&stream, &mut via_into, &mut scratch)
            .unwrap();
        assert_eq!(via_vec, via_into);
        // Wrong-length output buffers are rejected.
        let mut short = vec![0.0f32; data.len() - 1];
        assert!(c
            .decompress_into(&stream, &mut short, &mut scratch)
            .is_err());
    }

    #[test]
    fn decode_units_tile_payload_and_match_decompress() {
        let data = smooth(150_000); // 3 chunks: 64Ki + 64Ki + tail
        let bound = ErrorBound::abs_linf(1e-4);
        let c = ChunkedCompressor::new(SzCompressor::default());
        let stream = c.compress(&data, &bound).unwrap();
        let units = c.decode_units(&stream, data.len()).unwrap();
        assert_eq!(units.len(), 3);
        assert_eq!(units[0].offset, 0);
        let mut expected_off = 0usize;
        let mut out = vec![0.0f32; data.len()];
        let mut scratch = CodecScratch::new();
        for u in &units {
            assert_eq!(u.offset, expected_off, "units must be contiguous");
            expected_off += u.len;
            c.decode_unit_into(u, &mut out[u.offset..u.offset + u.len], &mut scratch)
                .unwrap();
        }
        assert_eq!(expected_off, data.len(), "units must tile the payload");
        assert_eq!(out, c.decompress(&stream).unwrap());
        // Length mismatch is rejected up front.
        assert!(c.decode_units(&stream, data.len() + 1).is_err());
    }

    #[test]
    fn decode_units_non_canonical_container_is_one_whole_unit() {
        // Three chunks with a chunk size that implies two: the layout is
        // not canonical, so units must collapse to one whole container.
        let data = smooth(10_000);
        let bound = ErrorBound::abs_linf(1e-4);
        let sz = SzCompressor::default();
        let a = sz.compress(&data[..4_000], &bound).unwrap();
        let b = sz.compress(&data[4_000..7_000], &bound).unwrap();
        let d = sz.compress(&data[7_000..], &bound).unwrap();
        let mut stream = Vec::new();
        stream.extend_from_slice(&(data.len() as u64).to_le_bytes());
        stream.extend_from_slice(&(9_999u64).to_le_bytes()); // bogus chunk size
        stream.extend_from_slice(&(3u32).to_le_bytes());
        for part in [&a, &b, &d] {
            stream.extend_from_slice(&(part.len() as u64).to_le_bytes());
        }
        for part in [&a, &b, &d] {
            stream.extend_from_slice(part);
        }
        let c = ChunkedCompressor::new(SzCompressor::default());
        let units = c.decode_units(&stream, data.len()).unwrap();
        assert_eq!(units.len(), 1);
        assert_eq!(
            (units[0].offset, units[0].len, units[0].tag),
            (0, data.len(), 0)
        );
        let mut out = vec![0.0f32; data.len()];
        let mut scratch = CodecScratch::new();
        c.decode_unit_into(&units[0], &mut out, &mut scratch)
            .unwrap();
        assert!(bound.verify(&data, &out));
    }

    #[test]
    fn non_canonical_layout_falls_back_to_legacy_path() {
        // Hand-build a container whose chunk_values field disagrees with
        // the actual chunk split; the legacy path must still decode it.
        let data = smooth(10_000);
        let bound = ErrorBound::abs_linf(1e-4);
        let sz = SzCompressor::default();
        let a = sz.compress(&data[..7_000], &bound).unwrap();
        let b = sz.compress(&data[7_000..], &bound).unwrap();
        let mut stream = Vec::new();
        stream.extend_from_slice(&(data.len() as u64).to_le_bytes());
        stream.extend_from_slice(&(9_999u64).to_le_bytes()); // bogus chunk size
        stream.extend_from_slice(&(2u32).to_le_bytes());
        stream.extend_from_slice(&(a.len() as u64).to_le_bytes());
        stream.extend_from_slice(&(b.len() as u64).to_le_bytes());
        stream.extend_from_slice(&a);
        stream.extend_from_slice(&b);
        let c = ChunkedCompressor::new(SzCompressor::default());
        let recon = c.decompress(&stream).unwrap();
        assert!(bound.verify(&data, &recon));
    }

    #[test]
    fn parallel_decode_not_slower() {
        // On a multi-core box the parallel decode should be at least as
        // fast as serial within noise; assert a very loose factor so the
        // test is robust on loaded CI machines.
        let data = smooth(2_000_000);
        let bound = ErrorBound::abs_linf(1e-4);
        let c = ChunkedCompressor::new(SzCompressor::default());
        let stream = c.compress(&data, &bound).unwrap();
        let t0 = std::time::Instant::now();
        let serial = ChunkedCompressor::new(SzCompressor::default())
            .with_threads(1)
            .decompress(&stream)
            .unwrap();
        let t_serial = t0.elapsed();
        let t1 = std::time::Instant::now();
        let parallel = c.decompress(&stream).unwrap();
        let t_parallel = t1.elapsed();
        assert_eq!(serial, parallel);
        assert!(
            t_parallel.as_secs_f64() < t_serial.as_secs_f64() * 2.0,
            "parallel {t_parallel:?} vs serial {t_serial:?}"
        );
    }
}
