//! Compression statistics: ratio, footprint, timing, derived throughputs.

/// Outcome statistics of one compress/decompress round trip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompressionStats {
    /// Uncompressed size in bytes.
    pub original_bytes: usize,
    /// Compressed size in bytes.
    pub compressed_bytes: usize,
    /// Wall-clock compression time in seconds.
    pub compress_secs: f64,
    /// Wall-clock decompression time in seconds.
    pub decompress_secs: f64,
}

impl CompressionStats {
    /// Compression ratio `original / compressed` (∞-safe: returns
    /// `f64::INFINITY` only if the stream is empty, which backends never
    /// produce for nonempty input).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            f64::INFINITY
        } else {
            self.original_bytes as f64 / self.compressed_bytes as f64
        }
    }

    /// Bits per value (for 4-byte floats).
    pub fn bits_per_value(&self) -> f64 {
        if self.original_bytes == 0 {
            0.0
        } else {
            self.compressed_bytes as f64 * 8.0 / (self.original_bytes as f64 / 4.0)
        }
    }

    /// Decompression throughput in GB/s of *original* data produced.
    pub fn decompress_gbps(&self) -> f64 {
        if self.decompress_secs <= 0.0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / self.decompress_secs / 1e9
    }

    /// Compression throughput in GB/s of original data consumed.
    pub fn compress_gbps(&self) -> f64 {
        if self.compress_secs <= 0.0 {
            return f64::INFINITY;
        }
        self.original_bytes as f64 / self.compress_secs / 1e9
    }

    /// Merges two stats (e.g. across batches): sizes and times add.
    pub fn merge(&self, other: &CompressionStats) -> CompressionStats {
        CompressionStats {
            original_bytes: self.original_bytes + other.original_bytes,
            compressed_bytes: self.compressed_bytes + other.compressed_bytes,
            compress_secs: self.compress_secs + other.compress_secs,
            decompress_secs: self.decompress_secs + other.decompress_secs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> CompressionStats {
        CompressionStats {
            original_bytes: 4000,
            compressed_bytes: 400,
            compress_secs: 0.001,
            decompress_secs: 0.002,
        }
    }

    #[test]
    fn ratio_and_bits() {
        let s = stats();
        assert_eq!(s.ratio(), 10.0);
        assert!((s.bits_per_value() - 3.2).abs() < 1e-12);
    }

    #[test]
    fn throughputs() {
        let s = stats();
        assert!((s.decompress_gbps() - 4000.0 / 0.002 / 1e9).abs() < 1e-12);
        assert!((s.compress_gbps() - 4000.0 / 0.001 / 1e9).abs() < 1e-12);
    }

    #[test]
    fn merge_adds() {
        let s = stats().merge(&stats());
        assert_eq!(s.original_bytes, 8000);
        assert_eq!(s.compressed_bytes, 800);
        assert!((s.compress_secs - 0.002).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cases() {
        let z = CompressionStats {
            original_bytes: 0,
            compressed_bytes: 0,
            compress_secs: 0.0,
            decompress_secs: 0.0,
        };
        assert!(z.ratio().is_infinite());
        assert_eq!(z.bits_per_value(), 0.0);
        assert!(z.decompress_gbps().is_infinite());
    }
}
