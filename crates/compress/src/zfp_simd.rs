//! AVX2 4-lane ZFP block-decode kernel.
//!
//! A v2 ZFP container (see [`crate::zfp`]) carries four independent block
//! sub-streams.  Bit-stream reads are inherently serial *within* a
//! sub-stream, but the four lanes' reads are independent chains the CPU
//! can overlap; the reconstruction math that follows — inverse Haar
//! lifting, exponent scaling, `f64 → f32` narrowing — is identical across
//! lanes and runs vectorized, one block per 64-bit lane:
//!
//! 1. Each lane scalar-reads one raw block (flag, exponent, widths,
//!    sign/magnitude coefficients) — four independent dependency chains.
//! 2. The 4×4 coefficient matrix is transposed so each ymm register holds
//!    one coefficient position across all four blocks, the inverse lifting
//!    runs in four vector add/sub/shift steps, and the integer
//!    coefficients convert to `f64` via the exponent-bias trick (exact for
//!    the ≤ 2^40 magnitudes valid streams produce).
//! 3. A per-block scale multiply, `f64 → f32` narrowing, and a 4×4 `f32`
//!    transpose put each block back in value order for one 16-byte store.
//!
//! Zero / verbatim blocks (rare: all-zero or non-finite data) drop that
//! round to the scalar finish.  Lanes near their payload end finish on the
//! checked scalar path, exactly like the v1 decoder's last blocks.
//!
//! On valid streams the kernel is bit-exact with the scalar path: the
//! integer lifting wraps identically, the `i64 → f64` conversion is exact
//! in the valid coefficient range, and multiply + narrow use the same
//! round-to-nearest semantics as the scalar expressions.  (Corrupt streams
//! can produce coefficients beyond 2^51 where the conversion trick — like
//! the scalar path's wrapping arithmetic — yields garbage-but-defined
//! values; both paths reject or bound-check everything that matters
//! before this point.)

#![cfg(target_arch = "x86_64")]

use crate::bitstream::BitReader;
use crate::traits::CompressError;
use crate::zfp::{
    decode_blocks_scalar, finish_block_scalar, pow2, read_block_raw_unchecked, reconstruct_coeff,
    MAX_BLOCK_BITS, PRECISION,
};

/// Decodes a v2 ZFP payload with four sub-streams into `out`.
/// `subs` are `(byte offset, byte length)` per sub-stream within
/// `payload`; `parts` are `(block offset, block count)` per sub-stream.
/// The caller guarantees AVX2 support and `subs.len() == 4`.
pub(crate) fn decode_v2_avx2(
    payload: &[u8],
    subs: &[(usize, usize)],
    parts: &[(usize, usize)],
    out: &mut [f32],
) -> Result<(), CompressError> {
    debug_assert_eq!(subs.len(), 4);
    debug_assert_eq!(parts.len(), 4);
    let _span = errflow_obs::trace::span("codec.zfp.decode.avx2");
    let n = out.len();
    // Carve `out` into the four lanes' contiguous value ranges.
    let mut regions: Vec<&mut [f32]> = Vec::with_capacity(4);
    let mut rest: &mut [f32] = out;
    let mut consumed_vals = 0usize;
    for &(block_off, block_len) in parts {
        let v0 = (block_off * 4).min(n);
        let v1 = ((block_off + block_len) * 4).min(n);
        let (head, tail) = std::mem::take(&mut rest).split_at_mut(v1 - v0);
        debug_assert_eq!(v0, consumed_vals);
        consumed_vals = v1;
        regions.push(head);
        rest = tail;
    }
    let mut readers: Vec<BitReader<'_>> = subs
        .iter()
        .map(|&(off, len)| BitReader::new(&payload[off..off + len]))
        .collect();
    let mut done = [0usize; 4];
    // SAFETY: dispatched only behind a runtime `simd::has_avx2()` check in
    // `zfp::decompress_v2_into`, matching the kernel's target feature.
    unsafe { kernel(&mut readers, &mut regions, &mut done) };
    // Per-lane scalar tail: partial last blocks and blocks too close to
    // the payload end for the unchecked reader.
    for ((r, region), &d) in readers.iter_mut().zip(regions.iter_mut()).zip(&done) {
        decode_blocks_scalar(r, &mut region[d..])?;
    }
    Ok(())
}

/// Vector round loop: runs while every lane has a full 4-value block and a
/// worst-case block footprint left in its payload.
// SAFETY: callers must guarantee AVX2 is available (enforced by the
// runtime dispatch in `decode_v2_avx2`); slice accesses are guarded by the
// round-entry length checks.
#[target_feature(enable = "avx2")]
unsafe fn kernel(readers: &mut [BitReader<'_>], regions: &mut [&mut [f32]], done: &mut [usize; 4]) {
    use std::arch::x86_64::*;

    // Exponent-bias constants for exact i64 → f64 conversion of |x| < 2^51:
    // (x + 2^52·1.5) reinterpreted as f64, minus 2^52·1.5.
    let magic_i = _mm256_set1_epi64x(0x4338000000000000);
    let magic_f = _mm256_set1_pd(6755399441055744.0);
    let sign_bit = _mm256_set1_epi64x(i64::MIN);
    let one = _mm256_set1_epi64x(1);

    // Arithmetic shift right by one on packed i64 (absent from AVX2):
    // logical shift, then restore the sign bit.
    // SAFETY: register-only AVX2 ops; only called from the AVX2 kernel.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn sra1(x: __m256i, sign_bit: __m256i) -> __m256i {
        _mm256_or_si256(_mm256_srli_epi64::<1>(x), _mm256_and_si256(x, sign_bit))
    }
    // Exact-in-range i64 → f64 conversion (exponent-bias trick) followed
    // by the per-block scale multiply.
    // SAFETY: register-only AVX2 ops; only called from the AVX2 kernel.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn scaled_f64(x: __m256i, sc: __m256d, magic_i: __m256i, magic_f: __m256d) -> __m256d {
        _mm256_mul_pd(
            _mm256_sub_pd(_mm256_castsi256_pd(_mm256_add_epi64(x, magic_i)), magic_f),
            sc,
        )
    }
    // Inverse reversible Haar pair, vectorized: a = l + ((h + 1) >> 1),
    // b = a − h (wrapping, identical to the scalar `haar_inv`).
    // SAFETY: register-only AVX2 ops; only called from the AVX2 kernel.
    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn haar_inv_v(
        l: __m256i,
        h: __m256i,
        one: __m256i,
        sign_bit: __m256i,
    ) -> (__m256i, __m256i) {
        let a = _mm256_add_epi64(l, sra1(_mm256_add_epi64(h, one), sign_bit));
        (a, _mm256_sub_epi64(a, h))
    }

    'outer: loop {
        for i in 0..4 {
            if regions[i].len() - done[i] < 4 || readers[i].remaining_bits() < MAX_BLOCK_BITS {
                break 'outer;
            }
        }
        // Stage 1: four independent scalar block reads (the serial part).
        // Peek every lane's header word first — four independent loads the
        // CPU overlaps — and pick the path from the flag + width fields
        // before advancing anything.
        let w: [u64; 4] = std::array::from_fn(|i| readers[i].peek_word());
        let mut widths = [0u32; 4];
        let mut fast = true;
        for i in 0..4 {
            widths[i] = ((w[i] >> 17) & 0x3F) as u32;
            // Zero/verbatim blocks or >27-bit coefficients (both rare on
            // real data) drop the round to the general path.
            if w[i] & 1 == 1 || widths[i] > 27 {
                fast = false;
            }
        }
        if !fast {
            for b in 0..4 {
                // SAFETY: (unchecked contract) the round-entry check above
                // proved every reader holds ≥ MAX_BLOCK_BITS, the worst-case
                // block size.  No cursor has advanced yet this round.
                let raw = read_block_raw_unchecked(&mut readers[b]);
                finish_block_scalar(&raw, &mut regions[b][done[b]..done[b] + 4]);
                done[b] += 4;
            }
            continue;
        }
        // Normal blocks with width ≤ 27: two sign+magnitude fields
        // (2 × 28 ≤ 56 bits) come out of each 57-bit window, so the whole
        // coefficient payload costs two loads instead of four dependent
        // per-coefficient reads.  Coefficients land directly in
        // coefficient-major order (`cols[j][b]` = coefficient j of lane b),
        // so stage 2 needs no transpose.
        let mut scales = [0f64; 4];
        let mut cols = [[0i64; 4]; 4];
        for b in 0..4 {
            let emax = ((w[b] >> 1) & 0x3FF) as i32 - 256;
            scales[b] = pow2(emax - (PRECISION - 2));
            let cut = ((w[b] >> 11) & 0x3F) as u32;
            let width = widths[b];
            let step = (1 + width) as usize;
            let mask = (1u64 << width) - 1;
            let r = &mut readers[b];
            // SAFETY: (unchecked contract) the round-entry check proved
            // ≥ MAX_BLOCK_BITS ≥ 23 + 4·(1 + 63) remain, and this path
            // consumes 23 + 4·(1 + width ≤ 27) bits — strictly fewer.
            r.advance_unchecked(23);
            let cw0 = r.peek_word();
            // SAFETY: (unchecked contract) as above — 2·step ≤ 56 of the
            // block's guaranteed remaining bits.
            r.advance_unchecked(2 * step);
            let cw1 = r.peek_word();
            // SAFETY: (unchecked contract) as above.
            r.advance_unchecked(2 * step);
            for j in 0..2 {
                let f0 = cw0 >> (j * step);
                cols[j][b] = reconstruct_coeff((f0 >> 1) & mask, cut, f0 & 1 == 1);
                let f1 = cw1 >> (j * step);
                cols[j + 2][b] = reconstruct_coeff((f1 >> 1) & mask, cut, f1 & 1 == 1);
            }
        }
        // Stage 2: inverse lifting + scale, one coefficient position per
        // ymm register (already coefficient-major).
        // SAFETY: each `cols[j]` is a 4×i64 array, a full 32-byte load.
        let ll = _mm256_loadu_si256(cols[0].as_ptr() as *const __m256i);
        let lh = _mm256_loadu_si256(cols[1].as_ptr() as *const __m256i);
        let h0 = _mm256_loadu_si256(cols[2].as_ptr() as *const __m256i);
        let h1 = _mm256_loadu_si256(cols[3].as_ptr() as *const __m256i);
        let (l0, l1) = haar_inv_v(ll, lh, one, sign_bit);
        let (va, vb) = haar_inv_v(l0, h0, one, sign_bit);
        let (vc, vd) = haar_inv_v(l1, h1, one, sign_bit);
        let sc = _mm256_loadu_pd(scales.as_ptr());
        let fa = _mm256_cvtpd_ps(scaled_f64(va, sc, magic_i, magic_f));
        let fb = _mm256_cvtpd_ps(scaled_f64(vb, sc, magic_i, magic_f));
        let fc = _mm256_cvtpd_ps(scaled_f64(vc, sc, magic_i, magic_f));
        let fd = _mm256_cvtpd_ps(scaled_f64(vd, sc, magic_i, magic_f));
        // Stage 3: 4×4 f32 transpose back to value-major, one 16-byte
        // store per block.
        let u0 = _mm_unpacklo_ps(fa, fb);
        let u1 = _mm_unpacklo_ps(fc, fd);
        let u2 = _mm_unpackhi_ps(fa, fb);
        let u3 = _mm_unpackhi_ps(fc, fd);
        let blocks = [
            _mm_movelh_ps(u0, u1),
            _mm_movehl_ps(u1, u0),
            _mm_movelh_ps(u2, u3),
            _mm_movehl_ps(u3, u2),
        ];
        for (b, blk) in blocks.iter().enumerate() {
            // SAFETY: the round-entry check guarantees ≥ 4 values remain
            // in lane b's region at offset `done[b]`.
            _mm_storeu_ps(regions[b][done[b]..].as_mut_ptr(), *blk);
            done[b] += 4;
        }
    }
}
