//! AVX2 gather-based 4-lane Huffman decode kernel.
//!
//! The multi-stream (v2) Huffman block carries four independent
//! sub-streams sharing one code table (see [`crate::huffman`]'s module
//! docs).  This kernel keeps one bit cursor per sub-stream in a 256-bit
//! register lane and advances all four decode chains together:
//!
//! 1. **Window gather** — one `vpgatherqq` pulls a 64-bit window of the
//!    payload at each lane's byte offset; a variable shift then aligns
//!    each window to its cursor's bit offset, leaving ≥ 57 valid bits per
//!    lane.
//! 2. **Table gather** — the low [`PEEK`] bits of every lane index a
//!    second `vpgatherqq` into the packed prefix table
//!    (`len << 32 | sym`), so four table lookups issue as one
//!    instruction.
//! 3. **Shift + advance** — variable shifts consume each lane's code
//!    length; four decode steps run per window refill
//!    (4 × [`PEEK`] = 52 bits, inside the 57-bit guarantee).
//!
//! A table miss (`len == 0`, code longer than [`PEEK`] bits) ends the
//! round early and every unfinished lane takes one scalar re-sync symbol,
//! keeping the four chains in step.  Lanes within four symbols of their
//! end — or whose cursor sits in the payload's last 8 bytes, where an
//! unguarded window gather would run off the buffer — are finished by the
//! resumable scalar lane decoder in [`crate::huffman`].
//!
//! The kernel is bit-exact with the scalar lane decoder on valid streams
//! (checked by the `ERRFLOW_NO_SIMD=1` parity tests).  On corrupt streams
//! it may transiently consume bits past a lane's own boundary (never past
//! the payload buffer); the caller re-checks every lane's final bit
//! position and rejects such streams with a typed error.

#![cfg(target_arch = "x86_64")]

use crate::huffman::{decode_one_symbol, CanonicalArrays, LaneCursor, PEEK};
use crate::traits::CompressError;

/// Runs the gather kernel over four lanes until only scalar-sized tails
/// remain, updating `cursors` in place.  The caller guarantees AVX2
/// support (via `errflow_tensor::simd::has_avx2`), exactly four
/// lanes/regions, and a full `2^PEEK` packed table.
pub(crate) fn decode_lanes_avx2(
    payload: &[u8],
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
    cursors: &mut [LaneCursor],
    regions: &mut [&mut [u32]],
) -> Result<(), CompressError> {
    debug_assert_eq!(cursors.len(), 4);
    debug_assert_eq!(regions.len(), 4);
    debug_assert_eq!(table64.len(), 1usize << PEEK);
    if payload.len() < 8 || cursors.len() != 4 || regions.len() != 4 {
        return Ok(()); // scalar lanes handle degenerate shapes
    }
    let _span = errflow_obs::trace::span("codec.huffman.decode.avx2");
    // SAFETY: this module is only called behind a runtime
    // `simd::has_avx2()` check (re-asserted by the caller), which is
    // exactly the target feature `kernel` is compiled with.
    unsafe { kernel(payload, table64, canon, cursors, regions) }
}

// SAFETY: callers must guarantee AVX2 is available (enforced by the
// runtime dispatch in `decode_lanes_avx2`); all memory accesses inside are
// bounds-checked or masked as annotated per gather.
#[target_feature(enable = "avx2")]
unsafe fn kernel(
    payload: &[u8],
    table64: &[u64],
    canon: &CanonicalArrays<'_>,
    cursors: &mut [LaneCursor],
    regions: &mut [&mut [u32]],
) -> Result<(), CompressError> {
    use std::arch::x86_64::*;

    // Largest byte offset from which an 8-byte window load stays inside
    // `payload` (checked non-underflowing by the `len < 8` guard above).
    let max_byte = payload.len() - 8;
    let mask = _mm256_set1_epi64x(((1u64 << PEEK) - 1) as i64);
    'outer: loop {
        // A full round decodes 4 symbols per lane from one window refill;
        // any lane that cannot guarantee that falls back to scalar.
        for i in 0..4 {
            if regions[i].len() - cursors[i].written < 4 || (cursors[i].bitpos >> 3) > max_byte {
                break 'outer;
            }
        }
        let byte_off = _mm256_setr_epi64x(
            (cursors[0].bitpos >> 3) as i64,
            (cursors[1].bitpos >> 3) as i64,
            (cursors[2].bitpos >> 3) as i64,
            (cursors[3].bitpos >> 3) as i64,
        );
        // SAFETY: every lane's byte offset was checked ≤ `max_byte`, so
        // each gathered element reads `payload[off..off + 8]`, in bounds.
        let mut words = _mm256_i64gather_epi64::<1>(payload.as_ptr() as *const i64, byte_off);
        let bit_align = _mm256_setr_epi64x(
            (cursors[0].bitpos & 7) as i64,
            (cursors[1].bitpos & 7) as i64,
            (cursors[2].bitpos & 7) as i64,
            (cursors[3].bitpos & 7) as i64,
        );
        words = _mm256_srlv_epi64(words, bit_align);
        // ≥ 57 trustworthy bits per lane from here.
        let mut pos = _mm256_setr_epi64x(
            cursors[0].bitpos as i64,
            cursors[1].bitpos as i64,
            cursors[2].bitpos as i64,
            cursors[3].bitpos as i64,
        );
        let mut hit_long = false;
        for _step in 0..4 {
            let idx = _mm256_and_si256(words, mask);
            // SAFETY: `idx` lanes are masked to < 2^PEEK and `table64`
            // holds exactly 2^PEEK entries (asserted on entry).
            let entries = _mm256_i64gather_epi64::<8>(table64.as_ptr() as *const i64, idx);
            let lens = _mm256_srli_epi64::<32>(entries);
            if _mm256_movemask_epi8(_mm256_cmpeq_epi64(lens, _mm256_setzero_si256())) != 0 {
                hit_long = true;
                break;
            }
            words = _mm256_srlv_epi64(words, lens);
            pos = _mm256_add_epi64(pos, lens);
            let mut ent = [0u64; 4];
            _mm256_storeu_si256(ent.as_mut_ptr() as *mut __m256i, entries);
            for i in 0..4 {
                regions[i][cursors[i].written] = ent[i] as u32;
                cursors[i].written += 1;
            }
        }
        let mut new_pos = [0i64; 4];
        _mm256_storeu_si256(new_pos.as_mut_ptr() as *mut __m256i, pos);
        for i in 0..4 {
            cursors[i].bitpos = new_pos[i] as usize;
        }
        if hit_long {
            // One scalar symbol per unfinished lane re-syncs all four
            // chains past the long code (any lane may have been the miss).
            for i in 0..4 {
                if cursors[i].written < regions[i].len() {
                    let c = &mut cursors[i];
                    regions[i][c.written] =
                        decode_one_symbol(payload, &mut c.bitpos, c.end_bit, table64, canon)?;
                    c.written += 1;
                }
            }
        }
    }
    Ok(())
}
