//! Frozen pre-optimization ("seed-path") decoders.
//!
//! The codec hot-path overhaul rewrote the Huffman/SZ/ZFP/MGARD decode
//! loops for throughput while keeping the byte format unchanged.  This
//! module preserves the original decode paths verbatim — per-symbol
//! table-probe Huffman decode, per-block `BitReader` ZFP decode, per-level
//! `Vec` MGARD reconstruction — for two purposes:
//!
//! 1. **Parity oracle**: tests assert the optimized decoders produce
//!    bit-identical outputs on streams the seed decoders accept.
//! 2. **Benchmark baseline**: `compress-bench` reports optimized throughput
//!    as a speedup over these functions, the same way `gemm-bench` gates
//!    the blocked kernel against `matmul_naive`.
//!
//! Nothing here should be "improved" — its value is staying fixed.

use crate::traits::{safe_capacity, CompressError};
use std::collections::HashMap;

const PEEK: u32 = 13;
const RUN_MARKER: u32 = u32::MAX;
const MAX_CODE: i64 = 32_767;
const ESCAPE: u32 = 0;
const PRECISION: i32 = 38;

/// Seed bit reader: byte-copy `peek_word`, per-call bounds checks.
struct RefBitReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> RefBitReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        RefBitReader { buf, pos: 0 }
    }

    #[inline]
    fn bit_capacity(&self) -> usize {
        self.buf.len() * 8
    }

    #[inline]
    fn peek_word(&self) -> u64 {
        let byte = self.pos / 8;
        let shift = (self.pos % 8) as u32;
        let mut word = [0u8; 8];
        let end = (byte + 8).min(self.buf.len());
        if byte < self.buf.len() {
            word[..end - byte].copy_from_slice(&self.buf[byte..end]);
        }
        u64::from_le_bytes(word) >> shift
    }

    #[inline]
    fn read_bit(&mut self) -> Option<bool> {
        if self.pos >= self.bit_capacity() {
            return None;
        }
        let bit = (self.buf[self.pos / 8] >> (self.pos % 8)) & 1 == 1;
        self.pos += 1;
        Some(bit)
    }

    #[inline]
    fn read_bits(&mut self, n: u32) -> Option<u64> {
        if n == 0 {
            return Some(0);
        }
        if self.pos + n as usize > self.bit_capacity() {
            return None;
        }
        let v = if n <= 57 {
            self.peek_word() & if n == 64 { u64::MAX } else { (1u64 << n) - 1 }
        } else {
            let lo = self.peek_word() & ((1u64 << 57) - 1);
            let mut tmp = RefBitReader {
                buf: self.buf,
                pos: self.pos + 57,
            };
            let hi = tmp.read_bits(n - 57)?;
            lo | (hi << 57)
        };
        self.pos += n as usize;
        Some(v)
    }

    #[inline]
    fn peek_bits_lossy(&self, n: u32) -> u64 {
        self.peek_word() & ((1u64 << n) - 1)
    }

    #[inline]
    fn skip_bits(&mut self, n: u32) {
        self.pos = (self.pos + n as usize).min(self.bit_capacity());
    }

    #[inline]
    fn remaining_bits(&self) -> usize {
        self.bit_capacity() - self.pos
    }
}

#[inline]
fn bitrev(v: u64, len: u8) -> u64 {
    v.reverse_bits() >> (64 - len as u32)
}

/// Checked fixed-width slice-to-array conversion: corrupt-stream error
/// instead of a panic when the slice is not exactly `N` bytes.
#[inline]
fn fixed<const N: usize>(bytes: &[u8], what: &str) -> Result<[u8; N], CompressError> {
    bytes
        .try_into()
        .map_err(|_| CompressError::CorruptStream(format!("truncated {what}")))
}

fn read_u64(buf: &[u8], pos: &mut usize) -> Result<u64, CompressError> {
    let bytes = buf
        .get(*pos..*pos + 8)
        .ok_or_else(|| CompressError::CorruptStream("truncated u64".into()))?;
    *pos += 8;
    Ok(u64::from_le_bytes(fixed(bytes, "u64")?))
}

fn read_u32(buf: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let bytes = buf
        .get(*pos..*pos + 4)
        .ok_or_else(|| CompressError::CorruptStream("truncated u32".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(fixed(bytes, "u32")?))
}

fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u32, CompressError> {
    let mut v = 0u32;
    let mut shift = 0u32;
    loop {
        let byte = *buf
            .get(*pos)
            .ok_or_else(|| CompressError::CorruptStream("truncated varint".into()))?;
        *pos += 1;
        v |= ((byte & 0x7f) as u32) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift >= 35 {
            return Err(CompressError::CorruptStream("varint overflow".into()));
        }
    }
}

fn canonical_codes(lengths: &[(u32, u8)]) -> HashMap<u32, (u64, u8)> {
    let mut codes = HashMap::with_capacity(lengths.len());
    let mut code = 0u64;
    let mut prev_len = 0u8;
    for &(sym, len) in lengths {
        code <<= len - prev_len;
        codes.insert(sym, (code, len));
        code += 1;
        prev_len = len;
    }
    codes
}

fn rle_expand(
    transformed: &[u32],
    runs: &[u32],
    n_original: usize,
) -> Result<Vec<u32>, CompressError> {
    let mut out = Vec::with_capacity(safe_capacity(n_original, transformed.len() * 4));
    let mut run_it = runs.iter();
    for &s in transformed {
        if s == RUN_MARKER {
            let &count = run_it.next().ok_or_else(|| {
                CompressError::CorruptStream("run marker without a run length".into())
            })?;
            let &prev = out
                .last()
                .ok_or_else(|| CompressError::CorruptStream("run marker at stream start".into()))?;
            out.extend(std::iter::repeat_n(prev, count as usize));
        } else {
            out.push(s);
        }
        if out.len() > n_original {
            return Err(CompressError::CorruptStream(
                "expanded stream longer than declared".into(),
            ));
        }
    }
    if out.len() != n_original {
        return Err(CompressError::CorruptStream(format!(
            "expanded to {} symbols, expected {n_original}",
            out.len()
        )));
    }
    Ok(out)
}

/// Seed-path Huffman decode: fresh table/`HashMap` per call, one table
/// probe per symbol.
pub fn huffman_decode(stream: &[u8]) -> Result<(Vec<u32>, usize), CompressError> {
    let mut pos = 0usize;
    let n_original = read_u64(stream, &mut pos)? as usize;
    let rle_used = *stream
        .get(pos)
        .ok_or_else(|| CompressError::CorruptStream("truncated rle flag".into()))?
        != 0;
    pos += 1;
    let n_runs = read_u32(stream, &mut pos)? as usize;
    let mut runs = Vec::with_capacity(safe_capacity(n_runs, stream.len()));
    for _ in 0..n_runs {
        runs.push(read_varint(stream, &mut pos)?);
    }
    let n_symbols = read_u64(stream, &mut pos)? as usize;
    let n_distinct = read_u32(stream, &mut pos)? as usize;
    if n_symbols == 0 {
        if n_original != 0 {
            return Err(CompressError::CorruptStream(
                "empty payload for nonempty stream".into(),
            ));
        }
        return Ok((Vec::new(), pos));
    }
    if n_distinct == 0 {
        return Err(CompressError::CorruptStream(
            "nonempty payload with empty alphabet".into(),
        ));
    }
    let mut lengths = Vec::with_capacity(safe_capacity(n_distinct, stream.len()));
    for _ in 0..n_distinct {
        let sym = read_u32(stream, &mut pos)?;
        let len = *stream
            .get(pos)
            .ok_or_else(|| CompressError::CorruptStream("truncated code table".into()))?;
        pos += 1;
        if len == 0 || len > 64 {
            return Err(CompressError::CorruptStream(format!(
                "invalid code length {len}"
            )));
        }
        if let Some(&(_, prev)) = lengths.last() {
            if len < prev {
                return Err(CompressError::CorruptStream(
                    "code table not in canonical order".into(),
                ));
            }
        }
        lengths.push((sym, len));
    }
    {
        let max_len = lengths.last().map(|&(_, l)| l).unwrap_or(1) as u32;
        let mut kraft: u128 = 0;
        for &(_, len) in &lengths {
            kraft += 1u128 << (max_len - len as u32);
        }
        if kraft > (1u128 << max_len) {
            return Err(CompressError::CorruptStream(
                "code table violates the Kraft inequality".into(),
            ));
        }
    }
    let codes = canonical_codes(&lengths);

    let mut table = vec![(0u32, 0u8); 1 << PEEK];
    let mut max_len = 1u8;
    for &(_, len) in &lengths {
        max_len = max_len.max(len);
    }
    let mut first_code = vec![0u64; max_len as usize + 1];
    let mut count = vec![0u32; max_len as usize + 1];
    let mut offset = vec![0u32; max_len as usize + 1];
    {
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for (i, &(_, len)) in lengths.iter().enumerate() {
            code <<= len - prev_len;
            if count[len as usize] == 0 {
                first_code[len as usize] = code;
                offset[len as usize] = i as u32;
            }
            count[len as usize] += 1;
            code += 1;
            prev_len = len;
        }
    }
    let canonical_syms: Vec<u32> = lengths.iter().map(|&(s, _)| s).collect();
    for (&sym, &(code, len)) in &codes {
        if (len as u32) <= PEEK {
            let base = bitrev(code, len) as usize;
            let step = 1usize << len;
            let mut idx = base;
            while idx < (1 << PEEK) {
                table[idx] = (sym, len);
                idx += step;
            }
        }
    }

    let payload_len = read_u64(stream, &mut pos)? as usize;
    let payload = stream
        .get(pos..pos + payload_len)
        .ok_or_else(|| CompressError::CorruptStream("truncated payload".into()))?;
    let consumed = pos + payload_len;

    let mut r = RefBitReader::new(payload);
    let mut out = Vec::with_capacity(safe_capacity(n_symbols, payload.len()));
    while out.len() < n_symbols {
        let peek = r.peek_bits_lossy(PEEK) as usize;
        let (sym, len) = table[peek];
        if len > 0 && (len as usize) <= r.remaining_bits() {
            r.skip_bits(len as u32);
            out.push(sym);
            continue;
        }
        let mut code = 0u64;
        let mut clen = 0usize;
        let sym = loop {
            let bit = r
                .read_bit()
                .ok_or_else(|| CompressError::CorruptStream("payload ended early".into()))?;
            code = (code << 1) | bit as u64;
            clen += 1;
            if clen > max_len as usize {
                return Err(CompressError::CorruptStream(
                    "no symbol matches the read prefix".into(),
                ));
            }
            let c = count[clen] as u64;
            if c > 0 && code >= first_code[clen] && code < first_code[clen] + c {
                let idx = offset[clen] as u64 + (code - first_code[clen]);
                break canonical_syms[idx as usize];
            }
        };
        out.push(sym);
    }
    let expanded = if rle_used {
        rle_expand(&out, &runs, n_original)?
    } else {
        if out.len() != n_original {
            return Err(CompressError::CorruptStream(format!(
                "decoded {} symbols, expected {n_original}",
                out.len()
            )));
        }
        out
    };
    Ok((expanded, consumed))
}

/// Seed-path SZ decompression: two-pass (Huffman, then predict) with a
/// growing reconstruction `Vec`.
pub fn sz_decompress(stream: &[u8]) -> Result<Vec<f32>, CompressError> {
    if stream.len() < 16 {
        return Err(CompressError::CorruptStream("header too short".into()));
    }
    let n = u64::from_le_bytes(fixed(&stream[0..8], "length header")?) as usize;
    let eb = f64::from_le_bytes(fixed(&stream[8..16], "bound header")?);
    let (symbols, consumed) = huffman_decode(&stream[16..])?;
    if symbols.len() != n {
        return Err(CompressError::CorruptStream(format!(
            "expected {n} symbols, decoded {}",
            symbols.len()
        )));
    }
    let mut pos = 16 + consumed;
    let mut recon: Vec<f32> = Vec::with_capacity(safe_capacity(n, stream.len()));
    for (i, &sym) in symbols.iter().enumerate() {
        if sym == ESCAPE {
            let bytes = stream
                .get(pos..pos + 4)
                .ok_or_else(|| CompressError::CorruptStream("truncated outlier table".into()))?;
            pos += 4;
            recon.push(f32::from_le_bytes(fixed(bytes, "outlier")?));
        } else {
            let code = sym as i64 - MAX_CODE - 1;
            let pred = match i {
                0 => 0.0,
                1 => recon[0] as f64,
                _ => 2.0 * recon[i - 1] as f64 - recon[i - 2] as f64,
            };
            recon.push((pred + 2.0 * eb * code as f64) as f32);
        }
    }
    Ok(recon)
}

fn haar_inv(l: i64, h: i64) -> (i64, i64) {
    let a = l.wrapping_add(h.wrapping_add(1) >> 1);
    (a, a.wrapping_sub(h))
}

fn inv_transform(p: &mut [i64; 4]) {
    let [ll, lh, h0, h1] = *p;
    let (l0, l1) = haar_inv(ll, lh);
    let (a, b) = haar_inv(l0, h0);
    let (c, d) = haar_inv(l1, h1);
    *p = [a, b, c, d];
}

fn decode_block(r: &mut RefBitReader<'_>) -> Result<[f32; 4], CompressError> {
    let flag = r
        .read_bit()
        .ok_or_else(|| CompressError::CorruptStream("missing block flag".into()))?;
    if flag {
        let verbatim = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("missing escape flag".into()))?;
        if !verbatim {
            return Ok([0.0; 4]);
        }
        let mut out = [0.0f32; 4];
        for o in &mut out {
            let bits = r
                .read_bits(32)
                .ok_or_else(|| CompressError::CorruptStream("truncated verbatim block".into()))?;
            *o = f32::from_bits(bits as u32);
        }
        return Ok(out);
    }
    let emax =
        r.read_bits(10)
            .ok_or_else(|| CompressError::CorruptStream("truncated emax".into()))? as i32
            - 256;
    let cut = r
        .read_bits(6)
        .ok_or_else(|| CompressError::CorruptStream("truncated cut".into()))? as u32;
    let width =
        r.read_bits(6)
            .ok_or_else(|| CompressError::CorruptStream("truncated width".into()))? as u32;
    let mut ints = [0i64; 4];
    for v in &mut ints {
        let neg = r
            .read_bit()
            .ok_or_else(|| CompressError::CorruptStream("truncated sign".into()))?;
        let mag = r
            .read_bits(width)
            .ok_or_else(|| CompressError::CorruptStream("truncated magnitude".into()))?
            as i64;
        let mut val = mag.wrapping_shl(cut);
        if cut > 0 && mag != 0 {
            val = val.wrapping_add(1i64.wrapping_shl(cut - 1));
        }
        *v = if neg { val.wrapping_neg() } else { val };
    }
    inv_transform(&mut ints);
    let scale = 2f64.powi(emax - (PRECISION - 2));
    Ok(std::array::from_fn(|i| (ints[i] as f64 * scale) as f32))
}

/// Seed-path ZFP decompression: per-block checked reads through the
/// byte-copy reader, `extend_from_slice` into the output.
pub fn zfp_decompress(stream: &[u8]) -> Result<Vec<f32>, CompressError> {
    if stream.len() < 8 {
        return Err(CompressError::CorruptStream("header too short".into()));
    }
    let n = u64::from_le_bytes(fixed(&stream[0..8], "length header")?) as usize;
    let mut r = RefBitReader::new(&stream[8..]);
    let mut out = Vec::with_capacity(safe_capacity(n, stream.len()));
    while out.len() < n {
        let take = (n - out.len()).min(4);
        let block = decode_block(&mut r)?;
        out.extend_from_slice(&block[..take]);
    }
    Ok(out)
}

const COARSEST_LEN: usize = 3;
const MAX_LEVELS: usize = 24;

fn level_lengths(n: usize) -> Vec<usize> {
    let mut lens = vec![n];
    let mut cur = n;
    while cur > COARSEST_LEN && lens.len() < MAX_LEVELS {
        cur = cur.div_ceil(2);
        lens.push(cur);
    }
    lens
}

#[inline]
fn interpolate(recon: &[f32], i: usize, len: usize) -> f32 {
    if i + 1 < len {
        0.5 * (recon[i - 1] + recon[i + 1])
    } else {
        recon[i - 1]
    }
}

/// Seed-path MGARD decompression: fresh per-level reconstruction `Vec`s.
pub fn mgard_decompress(stream: &[u8]) -> Result<Vec<f32>, CompressError> {
    if stream.len() < 20 {
        return Err(CompressError::CorruptStream("header too short".into()));
    }
    let n = u64::from_le_bytes(fixed(&stream[0..8], "length header")?) as usize;
    let eb = f64::from_le_bytes(fixed(&stream[8..16], "bound header")?);
    let coarse_len = u32::from_le_bytes(fixed(&stream[16..20], "coarse header")?) as usize;
    let lens = level_lengths(n);
    // `level_lengths` always returns at least one level (it starts from
    // `vec![n]`), so the fallback never fires.
    if coarse_len != lens.last().copied().unwrap_or(n) {
        return Err(CompressError::CorruptStream(format!(
            "coarse length {coarse_len} inconsistent with n={n}"
        )));
    }
    let mut pos = 20usize;
    let mut coarse = Vec::with_capacity(safe_capacity(coarse_len, stream.len()));
    for _ in 0..coarse_len {
        let bytes = stream
            .get(pos..pos + 4)
            .ok_or_else(|| CompressError::CorruptStream("truncated coarse level".into()))?;
        pos += 4;
        coarse.push(f32::from_le_bytes(fixed(bytes, "coarse level")?));
    }
    let (symbols, consumed) = huffman_decode(&stream[pos..])?;
    pos += consumed;

    let expected_symbols: usize = lens
        .iter()
        .take(lens.len().saturating_sub(1))
        .map(|&len| len / 2)
        .sum();
    if symbols.len() != expected_symbols {
        return Err(CompressError::CorruptStream(format!(
            "expected {expected_symbols} coefficients, decoded {}",
            symbols.len()
        )));
    }

    let mut sym_iter = symbols.into_iter();
    let mut recon_coarse = coarse;
    for k in (0..lens.len().saturating_sub(1)).rev() {
        let len = lens[k];
        let mut recon = vec![0.0f32; len];
        for (j, &v) in recon_coarse.iter().enumerate() {
            recon[2 * j] = v;
        }
        for i in (1..len).step_by(2) {
            let sym = sym_iter.next().ok_or_else(|| {
                CompressError::CorruptStream("coefficient stream exhausted".into())
            })?;
            if sym == ESCAPE {
                let bytes = stream.get(pos..pos + 4).ok_or_else(|| {
                    CompressError::CorruptStream("truncated outlier table".into())
                })?;
                pos += 4;
                recon[i] = f32::from_le_bytes(fixed(bytes, "outlier")?);
            } else {
                let code = sym as i64 - MAX_CODE - 1;
                let pred = interpolate(&recon, i, len);
                recon[i] = (pred as f64 + 2.0 * eb * code as f64) as f32;
            }
        }
        recon_coarse = recon;
    }
    Ok(recon_coarse)
}

/// Dispatches to the seed-path decoder for a backend by [`Compressor::name`]
/// (`"sz"`, `"zfp"`, `"mgard"`).
///
/// [`Compressor::name`]: crate::traits::Compressor::name
pub fn decompress(backend: &str, stream: &[u8]) -> Result<Vec<f32>, CompressError> {
    match backend {
        "sz" => sz_decompress(stream),
        "zfp" => zfp_decompress(stream),
        "mgard" => mgard_decompress(stream),
        other => Err(CompressError::CorruptStream(format!(
            "no reference decoder for backend {other:?}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error_bound::ErrorBound;
    use crate::traits::Compressor;
    use crate::{huffman, MgardCompressor, SzCompressor, ZfpCompressor};
    use errflow_tensor::rng::StdRng;

    fn smooth_field(n: usize) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(0x5EED);
        (0..n)
            .map(|i| {
                let t = i as f32 / n as f32;
                (t * 11.0).sin() * 2.0 + 0.3 * (t * 47.0).cos() + 0.01 * rng.gen_range(-1.0f32..1.0)
            })
            .collect()
    }

    #[test]
    fn huffman_parity_with_optimized_decoder() {
        let mut rng = StdRng::seed_from_u64(0xFACE);
        for _ in 0..32 {
            let n = rng.gen_range(0usize..4000);
            let alphabet = rng.gen_range(1u32..300);
            let mut symbols: Vec<u32> = (0..n).map(|_| rng.gen_range(0..alphabet)).collect();
            // Splice in some runs so the RLE path is exercised.
            if n > 200 {
                let v = rng.gen_range(0..alphabet);
                symbols[10..150].fill(v);
            }
            let enc = huffman::encode(&symbols);
            let seed = huffman_decode(&enc).expect("seed decode");
            let fast = huffman::decode(&enc).expect("optimized decode");
            assert_eq!(seed, fast);
        }
    }

    #[test]
    fn backend_parity_with_optimized_decoders() {
        let data = smooth_field(10_000);
        let bound = ErrorBound::rel_linf(1e-4);
        // The frozen oracle predates the v2 containers, so sz/zfp pin the
        // legacy layout here; v2 parity is covered by the cross-version
        // integration tests.
        for c in [
            &SzCompressor::v1_format() as &dyn Compressor,
            &ZfpCompressor::v1_format(),
            &MgardCompressor::new(),
        ] {
            let stream = c.compress(&data, &bound).expect("compress");
            let seed = decompress(c.name(), &stream).expect("seed decode");
            let fast = c.decompress(&stream).expect("optimized decode");
            assert_eq!(
                seed.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                fast.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "backend {} outputs must be bit-identical",
                c.name()
            );
        }
    }

    #[test]
    fn unknown_backend_rejected() {
        assert!(decompress("nope", &[0u8; 32]).is_err());
    }
}
