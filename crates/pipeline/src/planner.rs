//! Tolerance allocation and end-to-end pipeline execution (§IV-D).
//!
//! Given a user tolerance on the QoI, the planner:
//!
//! 1. allocates `quant_share` of it to quantization,
//! 2. picks the *fastest* format whose predicted quantization bound fits
//!    the allocation (falling back to FP32),
//! 3. re-allocates **all unutilized tolerance** — including the slack
//!    between the chosen format's bound and its allocation — to input
//!    compression, inverting Ineq. (3) for the admissible `‖Δx‖₂`,
//! 4. converts that input budget into the compressor's native bound mode.
//!
//! [`Planner::execute`] then runs the full pipeline on real data:
//! compress → (simulated) store/read → decompress → infer with quantized
//! weights, reporting achieved QoI error (which the bound must dominate),
//! compression stats, and the I/O / execution / end-to-end throughputs the
//! paper plots in Figs. 10–15.

use crate::io::StorageModel;
use errflow_compress::{Compressor, ErrorBound};
use errflow_core::{quantize_model, NetworkAnalysis};
use errflow_nn::Model;
use errflow_quant::throughput::ExecutionModel;
use errflow_quant::QuantFormat;
use errflow_tensor::norms::{diff_norm, Norm};
use errflow_tensor::stats::Summary;

/// How per-sample feature vectors are laid out in the flat compression
/// payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadLayout {
    /// `payload[f·n + s] = samples[s][f]` — feature-major.  For gridded
    /// workloads with spatially-ordered samples this keeps each feature's
    /// field contiguous and smooth (high compressibility).
    FeatureMajor,
    /// `payload[s·d + f] = samples[s][f]` — sample-major.  Natural for
    /// image workloads where each sample is itself a smooth field.
    SampleMajor,
}

/// Flattens samples into a payload buffer.
pub fn flatten(samples: &[Vec<f32>], layout: PayloadLayout) -> Vec<f32> {
    if samples.is_empty() {
        return Vec::new();
    }
    let d = samples[0].len();
    match layout {
        PayloadLayout::SampleMajor => samples.iter().flatten().copied().collect(),
        PayloadLayout::FeatureMajor => {
            let n = samples.len();
            let mut out = vec![0.0f32; n * d];
            for (s, sample) in samples.iter().enumerate() {
                for (f, &v) in sample.iter().enumerate() {
                    out[f * n + s] = v;
                }
            }
            out
        }
    }
}

/// Inverse of [`flatten`].
pub fn unflatten(flat: &[f32], n: usize, d: usize, layout: PayloadLayout) -> Vec<Vec<f32>> {
    assert_eq!(flat.len(), n * d, "payload size mismatch");
    match layout {
        PayloadLayout::SampleMajor => flat.chunks(d).map(<[f32]>::to_vec).collect(),
        PayloadLayout::FeatureMajor => (0..n)
            .map(|s| (0..d).map(|f| flat[f * n + s]).collect())
            .collect(),
    }
}

/// Planner inputs: the user's QoI tolerance and the allocation policy.
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Relative tolerance on the QoI (e.g. `1e-3`).
    pub rel_tolerance: f64,
    /// Norm the tolerance is expressed in.
    pub norm: Norm,
    /// Fraction of the tolerance allocated to quantization (paper sweeps
    /// 0.1–0.9; Fig. 10 prioritizes quantization with a high share).
    pub quant_share: f64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            rel_tolerance: 1e-3,
            norm: Norm::LInf,
            quant_share: 0.5,
        }
    }
}

/// The planner's decision for one configuration.
#[derive(Debug, Clone, Copy)]
pub struct PipelinePlan {
    /// Chosen weight format.
    pub format: QuantFormat,
    /// Absolute QoI tolerance implied by the relative one.
    pub abs_tolerance: f64,
    /// Predicted quantization error bound of the chosen format (absolute).
    pub predicted_quant_bound: f64,
    /// Absolute QoI budget left for compression after quantization.
    pub compression_budget: f64,
    /// Admissible input-error L2 norm (`compression_budget / amplification`).
    pub input_budget_l2: f64,
    /// Predicted total bound (quantization bound + compression budget).
    pub predicted_total_bound: f64,
}

/// Outcome of executing a plan on real data.
#[derive(Debug, Clone)]
pub struct PipelineReport {
    /// The plan that was executed.
    pub plan: PipelinePlan,
    /// Compression round-trip statistics (real measured times).
    pub stats: errflow_compress::CompressionStats,
    /// Effective I/O throughput in GB/s (simulated read + measured decode).
    pub io_gbps: f64,
    /// Model-execution throughput in GB/s of ingested input data.
    pub exec_gbps: f64,
    /// End-to-end throughput: the slower of the two phases.
    pub end_to_end_gbps: f64,
    /// Achieved relative QoI errors across samples (in the plan's norm).
    pub achieved_rel_error: Summary,
    /// The predicted total bound, relative to the reference QoI norm.
    pub predicted_rel_bound: f64,
}

/// Fig. 1's "error flow analysis" box: couples a model's
/// [`NetworkAnalysis`] with the throughput models and reference QoI
/// magnitudes needed to turn relative tolerances into plans.
pub struct Planner<'m, M: Model> {
    model: &'m M,
    analysis: NetworkAnalysis,
    qoi_ref_l2: f64,
    qoi_ref_linf: f64,
    exec: ExecutionModel,
    storage: StorageModel,
}

impl<'m, M: Model> Planner<'m, M> {
    /// Builds a planner, calibrating reference QoI magnitudes (the
    /// denominators of relative errors) on the given inputs.
    pub fn new(model: &'m M, calibration_inputs: &[Vec<f32>]) -> Self {
        Self::with_analysis(model, calibration_inputs, NetworkAnalysis::of(model))
    }

    /// Builds a planner whose quantization bounds use **calibrated layer
    /// magnitudes** (the extension described in
    /// [`NetworkAnalysis::of_calibrated`]) instead of the paper's
    /// worst-case `√n₀·Πσ̃`.  Tighter bounds unlock reduced-precision
    /// formats at tighter tolerances, at the cost of a data-dependence
    /// assumption covered by `safety_factor`.
    pub fn new_calibrated(
        model: &'m M,
        calibration_inputs: &[Vec<f32>],
        safety_factor: f64,
    ) -> Self {
        let analysis = NetworkAnalysis::of_calibrated(model, calibration_inputs, safety_factor);
        Self::with_analysis(model, calibration_inputs, analysis)
    }

    /// Builds a planner around a **precomputed** analysis.  The spectral
    /// analysis is the expensive part of construction; callers that plan
    /// repeatedly for the same model (e.g. the serving layer's plan cache)
    /// compute it once and clone it in here per rebuild.
    pub fn with_analysis(
        model: &'m M,
        calibration_inputs: &[Vec<f32>],
        analysis: NetworkAnalysis,
    ) -> Self {
        assert!(
            !calibration_inputs.is_empty(),
            "need calibration inputs for relative tolerances"
        );
        let mut l2_acc = 0.0;
        let mut linf_acc = 0.0;
        for x in calibration_inputs {
            let y = model.forward(x);
            l2_acc += Norm::L2.eval(&y);
            linf_acc += Norm::LInf.eval(&y);
        }
        let n = calibration_inputs.len() as f64;
        Planner {
            model,
            analysis,
            qoi_ref_l2: (l2_acc / n).max(f64::MIN_POSITIVE),
            qoi_ref_linf: (linf_acc / n).max(f64::MIN_POSITIVE),
            exec: ExecutionModel::default(),
            storage: StorageModel::default(),
        }
    }

    /// Overrides the execution model (e.g. different hardware calibration).
    pub fn with_execution_model(mut self, exec: ExecutionModel) -> Self {
        self.exec = exec;
        self
    }

    /// Overrides the storage model.
    pub fn with_storage_model(mut self, storage: StorageModel) -> Self {
        self.storage = storage;
        self
    }

    /// The underlying spectral analysis.
    pub fn analysis(&self) -> &NetworkAnalysis {
        &self.analysis
    }

    /// Mean reference QoI magnitude in the given norm.
    pub fn qoi_reference(&self, norm: Norm) -> f64 {
        match norm {
            Norm::L2 => self.qoi_ref_l2,
            Norm::LInf => self.qoi_ref_linf,
        }
    }

    /// Formats ordered fastest-first for this model (the "best" order the
    /// selector walks).
    fn formats_by_speed(&self) -> Vec<QuantFormat> {
        let mut fmts: Vec<QuantFormat> = QuantFormat::ALL.to_vec();
        fmts.sort_by(|a, b| {
            self.exec
                .samples_per_sec(self.model.flops(), *b)
                .partial_cmp(&self.exec.samples_per_sec(self.model.flops(), *a))
                // A degenerate executor profile (zero/NaN throughput) keeps
                // the declaration order rather than panicking the planner.
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        fmts
    }

    /// Allocates the tolerance per §IV-D (see module docs).
    pub fn plan(&self, cfg: &PlannerConfig) -> PipelinePlan {
        assert!(
            (0.0..=1.0).contains(&cfg.quant_share),
            "quant_share must be in [0, 1]"
        );
        let abs_tol = cfg.rel_tolerance * self.qoi_reference(cfg.norm);
        let quant_budget = abs_tol * cfg.quant_share;
        let mut chosen = QuantFormat::Fp32;
        let mut chosen_bound = 0.0;
        for f in self.formats_by_speed() {
            let b = self.analysis.quantization_bound(f);
            if b <= quant_budget {
                chosen = f;
                chosen_bound = b;
                break;
            }
        }
        // All unutilized tolerance flows to compression.
        let compression_budget = (abs_tol - chosen_bound).max(0.0);
        let amplification = self.analysis.amplification().max(f64::MIN_POSITIVE);
        PipelinePlan {
            format: chosen,
            abs_tolerance: abs_tol,
            predicted_quant_bound: chosen_bound,
            compression_budget,
            input_budget_l2: compression_budget / amplification,
            predicted_total_bound: chosen_bound + compression_budget,
        }
    }

    /// **Future-work extension** (§IV-D: "the need for an optimization
    /// algorithm to automate the determination of the optimal strategy"):
    /// sweeps the quantization share and returns the plan with the highest
    /// *predicted* end-to-end throughput, scoring candidates with a probed
    /// [`crate::ratio_model::RatioModel`] instead of compressing the full
    /// payload per candidate.
    ///
    /// `payload_sample` should be a representative slice of the data the
    /// pipeline will stream; `sample_dim` is the per-sample feature count
    /// (for the L∞→pointwise conversion of L∞-only backends).
    pub fn plan_optimal(
        &self,
        rel_tolerance: f64,
        norm: Norm,
        compressor: &dyn Compressor,
        payload_sample: &[f32],
        sample_dim: usize,
    ) -> Result<(PipelinePlan, f64), errflow_compress::CompressError> {
        // Probe across the input-budget range the share sweep can produce.
        let budgets: Vec<f64> = (0..5)
            .map(|i| {
                let share = 0.02 + 0.96 * i as f64 / 4.0;
                self.plan(&PlannerConfig {
                    rel_tolerance,
                    norm,
                    quant_share: share,
                })
                .input_budget_l2
                .max(1e-12)
            })
            .collect();
        let supports_l2 = compressor.supports(&errflow_compress::ErrorBound::abs_l2(1.0));
        let n = payload_sample.len().max(1) as f64;
        let d = sample_dim.max(1) as f64;
        let make_bound = |budget: f64| {
            if supports_l2 {
                // Whole-sample L2 budget scaled to the probe buffer size.
                errflow_compress::ErrorBound::abs_l2(budget * (n / d).sqrt())
            } else {
                errflow_compress::ErrorBound::abs_linf(budget / d.sqrt())
            }
        };
        let mut probe_tols = budgets.clone();
        probe_tols.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        probe_tols.dedup();
        let model = crate::ratio_model::RatioModel::probe(
            compressor,
            payload_sample,
            &probe_tols,
            make_bound,
        )?;

        let mut best: Option<(PipelinePlan, f64)> = None;
        for i in 0..19 {
            let share = 0.05 * (i + 1) as f64;
            let plan = self.plan(&PlannerConfig {
                rel_tolerance,
                norm,
                quant_share: share,
            });
            let ratio = model.predict_ratio(plan.input_budget_l2.max(1e-12));
            let decode = model.predict_decode_gbps(plan.input_budget_l2.max(1e-12));
            // Effective I/O GB/s: read compressed + decode.
            let io = 1.0 / (1.0 / (ratio * self.storage.bandwidth_gbps) + 1.0 / decode.max(1e-9));
            let exec = self
                .exec
                .ingest_gbps(self.model.flops(), sample_dim * 4, plan.format);
            let score = io.min(exec);
            if best.as_ref().is_none_or(|(_, s)| score > *s) {
                best = Some((plan, score));
            }
        }
        Ok(best.expect("at least one share evaluated"))
    }

    /// Converts a plan's input budget into the compressor's bound.
    ///
    /// Backends with L2 support take the budget directly; L∞-only backends
    /// (ZFP) get a pointwise budget of `B/√n`, which implies the L2 bound.
    pub fn compressor_bound(
        &self,
        plan: &PipelinePlan,
        compressor: &dyn Compressor,
        payload_len: usize,
    ) -> ErrorBound {
        let l2_bound = ErrorBound::abs_l2(plan.input_budget_l2);
        if compressor.supports(&l2_bound) {
            l2_bound
        } else {
            let n = payload_len.max(1) as f64;
            ErrorBound::abs_linf(plan.input_budget_l2 / n.sqrt())
        }
    }

    /// Executes the planned pipeline on real samples.
    ///
    /// The samples are flattened per `layout`, compressed under the plan's
    /// input budget, decompressed (timed), and run through the quantized
    /// model; achieved errors are measured against full-precision inference
    /// on the original inputs.
    pub fn execute(
        &self,
        plan: &PipelinePlan,
        compressor: &dyn Compressor,
        samples: &[Vec<f32>],
        norm: Norm,
        layout: PayloadLayout,
    ) -> Result<PipelineReport, errflow_compress::CompressError> {
        assert!(!samples.is_empty(), "cannot execute on no samples");
        let d = samples[0].len();
        let payload = flatten(samples, layout);
        let bound = self.compressor_bound(plan, compressor, payload.len());
        let (recon_payload, mut stats) = {
            let _span = errflow_obs::trace::span("pipeline.roundtrip");
            compressor.roundtrip(&payload, &bound)?
        };
        // Small payloads make one-shot wall-clock timing noisy; re-time the
        // decompression over enough repetitions for a stable GB/s figure.
        if stats.decompress_secs < 5e-3 {
            let stream = compressor.compress(&payload, &bound)?;
            let reps = ((5e-3 / stats.decompress_secs.max(1e-7)) as usize).clamp(3, 200);
            let t0 = std::time::Instant::now();
            for _ in 0..reps {
                compressor.decompress(&stream)?;
            }
            stats.decompress_secs = t0.elapsed().as_secs_f64() / reps as f64;
        }
        let recon = unflatten(&recon_payload, samples.len(), d, layout);

        let quantized = {
            let _span = errflow_obs::trace::span("pipeline.quantize");
            quantize_model(self.model, plan.format)
        };
        let _fwd_span = errflow_obs::trace::span("pipeline.forward");
        let mut rel_errors = Vec::with_capacity(samples.len());
        for (x, xt) in samples.iter().zip(&recon) {
            let y = self.model.forward(x);
            let yq = quantized.forward(xt);
            let denom = norm.eval(&y).max(self.qoi_reference(norm) * 1e-6);
            rel_errors.push(diff_norm(&y, &yq, norm) / denom);
        }

        let io_gbps = self.storage.effective_read_gbps(&stats);
        let exec_gbps = self
            .exec
            .ingest_gbps(self.model.flops(), d * 4, plan.format);
        Ok(PipelineReport {
            plan: *plan,
            stats,
            io_gbps,
            exec_gbps,
            end_to_end_gbps: io_gbps.min(exec_gbps),
            achieved_rel_error: Summary::of(&rel_errors).expect("nonempty"),
            predicted_rel_bound: plan.predicted_total_bound / self.qoi_reference(norm),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_compress::{MgardCompressor, SzCompressor, ZfpCompressor};
    use errflow_nn::{Activation, Mlp};
    use errflow_tensor::rng::StdRng;

    fn model() -> Mlp {
        Mlp::new(
            &[6, 32, 32, 4],
            Activation::Tanh,
            Activation::Identity,
            11,
            None,
        )
    }

    fn samples(n: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
        let mut rng = StdRng::seed_from_u64(seed);
        // Spatially-correlated samples: smooth trajectory through feature
        // space, so the payload compresses like a field.
        let mut cur: Vec<f32> = (0..d).map(|_| rng.gen_range(-0.5..0.5)).collect();
        (0..n)
            .map(|_| {
                for v in &mut cur {
                    *v = (*v + rng.gen_range(-0.02..0.02f32)).clamp(-1.0, 1.0);
                }
                cur.clone()
            })
            .collect()
    }

    #[test]
    fn flatten_roundtrip_both_layouts() {
        let s = samples(7, 3, 1);
        for layout in [PayloadLayout::FeatureMajor, PayloadLayout::SampleMajor] {
            let flat = flatten(&s, layout);
            assert_eq!(flat.len(), 21);
            let back = unflatten(&flat, 7, 3, layout);
            assert_eq!(back, s);
        }
    }

    #[test]
    fn plan_allocates_within_tolerance() {
        let m = model();
        let planner = Planner::new(&m, &samples(20, 6, 2));
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: 1e-3,
            norm: Norm::L2,
            quant_share: 0.5,
        });
        assert!(plan.predicted_quant_bound <= plan.abs_tolerance * 0.5 + 1e-15);
        assert!(plan.predicted_total_bound <= plan.abs_tolerance + 1e-15);
        assert!(plan.input_budget_l2 > 0.0);
    }

    #[test]
    fn tight_tolerance_forces_fp32() {
        let m = model();
        let planner = Planner::new(&m, &samples(20, 6, 3));
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: 1e-9,
            norm: Norm::L2,
            quant_share: 0.5,
        });
        assert_eq!(plan.format, QuantFormat::Fp32);
        assert_eq!(plan.predicted_quant_bound, 0.0);
    }

    #[test]
    fn loose_tolerance_picks_fast_format() {
        let m = model();
        let planner = Planner::new(&m, &samples(20, 6, 4));
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: 10.0,
            norm: Norm::L2,
            quant_share: 0.9,
        });
        // With an enormous budget, the fastest format (INT8) wins.
        assert_eq!(plan.format, QuantFormat::Int8);
    }

    #[test]
    fn larger_share_unlocks_lower_precision_sooner() {
        let m = model();
        let planner = Planner::new(&m, &samples(20, 6, 5));
        // Find a tolerance where shares disagree.
        let mut found = false;
        for exp in -60..-5 {
            let tol = 10f64.powf(exp as f64 / 10.0);
            let lo = planner
                .plan(&PlannerConfig {
                    rel_tolerance: tol,
                    norm: Norm::L2,
                    quant_share: 0.1,
                })
                .format;
            let hi = planner
                .plan(&PlannerConfig {
                    rel_tolerance: tol,
                    norm: Norm::L2,
                    quant_share: 0.9,
                })
                .format;
            if lo == QuantFormat::Fp32 && hi != QuantFormat::Fp32 {
                found = true;
                break;
            }
        }
        assert!(found, "no tolerance separates 10% and 90% shares");
    }

    #[test]
    fn execute_respects_bound_for_all_backends() {
        let m = model();
        let cal = samples(30, 6, 6);
        let planner = Planner::new(&m, &cal);
        let cfg = PlannerConfig {
            rel_tolerance: 1e-2,
            norm: Norm::L2,
            quant_share: 0.3,
        };
        let plan = planner.plan(&cfg);
        let data = samples(200, 6, 7);
        let backends: Vec<Box<dyn Compressor>> = vec![
            Box::new(SzCompressor::default()),
            Box::new(ZfpCompressor::default()),
            Box::new(MgardCompressor::default()),
        ];
        for be in &backends {
            let report = planner
                .execute(
                    &plan,
                    be.as_ref(),
                    &data,
                    Norm::L2,
                    PayloadLayout::FeatureMajor,
                )
                .unwrap();
            // The achieved relative error must stay below the predicted
            // relative bound (the paper's headline validation).
            assert!(
                report.achieved_rel_error.max <= report.predicted_rel_bound,
                "{}: achieved {} > bound {}",
                be.name(),
                report.achieved_rel_error.max,
                report.predicted_rel_bound
            );
            assert!(report.io_gbps > 0.0);
            assert!(report.exec_gbps > 0.0);
            assert!(report.end_to_end_gbps <= report.io_gbps);
            assert!(report.end_to_end_gbps <= report.exec_gbps);
        }
    }

    #[test]
    fn plan_optimal_beats_or_matches_fixed_shares() {
        let m = model();
        let cal = samples(40, 6, 31);
        let planner = Planner::new_calibrated(&m, &cal, 1.5);
        let data = samples(400, 6, 32);
        let payload = flatten(&data, PayloadLayout::FeatureMajor);
        let sz = SzCompressor::default();
        let (best_plan, best_score) = planner
            .plan_optimal(1e-2, Norm::L2, &sz, &payload, 6)
            .unwrap();
        assert!(best_score > 0.0);
        assert!(best_plan.predicted_total_bound <= best_plan.abs_tolerance * (1.0 + 1e-12));
        // The optimal plan must still execute soundly.
        let report = planner
            .execute(
                &best_plan,
                &sz,
                &data,
                Norm::L2,
                PayloadLayout::FeatureMajor,
            )
            .unwrap();
        assert!(report.achieved_rel_error.max <= report.predicted_rel_bound);
    }

    #[test]
    fn plan_optimal_works_for_linf_only_backend() {
        let m = model();
        let cal = samples(40, 6, 33);
        let planner = Planner::new(&m, &cal);
        let data = samples(300, 6, 34);
        let payload = flatten(&data, PayloadLayout::FeatureMajor);
        let zfp = ZfpCompressor::default();
        let (plan, score) = planner
            .plan_optimal(1e-1, Norm::LInf, &zfp, &payload, 6)
            .unwrap();
        assert!(score > 0.0);
        assert!(plan.input_budget_l2 > 0.0);
    }

    #[test]
    fn calibrated_planner_unlocks_formats_at_tighter_tolerances() {
        let m = model();
        let cal = samples(40, 6, 21);
        let worst = Planner::new(&m, &cal);
        let tight = Planner::new_calibrated(&m, &cal, 1.5);
        let unlock = |p: &Planner<Mlp>| -> f64 {
            for i in 0..200 {
                let tol = 10f64.powf(-8.0 + i as f64 * 0.05);
                let plan = p.plan(&PlannerConfig {
                    rel_tolerance: tol,
                    norm: Norm::L2,
                    quant_share: 0.5,
                });
                if plan.format != QuantFormat::Fp32 {
                    return tol;
                }
            }
            f64::INFINITY
        };
        let u_worst = unlock(&worst);
        let u_tight = unlock(&tight);
        assert!(
            u_tight < u_worst,
            "calibrated {u_tight:.2e} should unlock before worst-case {u_worst:.2e}"
        );
    }

    #[test]
    fn calibrated_planner_execution_still_sound() {
        let m = model();
        let cal = samples(40, 6, 22);
        let planner = Planner::new_calibrated(&m, &cal, 1.5);
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: 1e-2,
            norm: Norm::L2,
            quant_share: 0.5,
        });
        let data = samples(150, 6, 23);
        let report = planner
            .execute(
                &plan,
                &SzCompressor::default(),
                &data,
                Norm::L2,
                PayloadLayout::FeatureMajor,
            )
            .unwrap();
        assert!(report.achieved_rel_error.max <= report.predicted_rel_bound);
    }

    #[test]
    fn zfp_gets_linf_bound_sz_gets_l2() {
        let m = model();
        let planner = Planner::new(&m, &samples(10, 6, 8));
        let plan = planner.plan(&PlannerConfig::default());
        let sz = SzCompressor::default();
        let zfp = ZfpCompressor::default();
        let b_sz = planner.compressor_bound(&plan, &sz, 600);
        let b_zfp = planner.compressor_bound(&plan, &zfp, 600);
        assert!(b_sz.mode.is_l2());
        assert!(!b_zfp.mode.is_l2());
        // ZFP's pointwise budget implies the L2 budget.
        assert!(b_zfp.tolerance <= b_sz.tolerance);
    }

    #[test]
    #[should_panic(expected = "quant_share")]
    fn invalid_share_panics() {
        let m = model();
        let planner = Planner::new(&m, &samples(5, 6, 9));
        planner.plan(&PlannerConfig {
            rel_tolerance: 1e-3,
            norm: Norm::L2,
            quant_share: 1.5,
        });
    }
}
