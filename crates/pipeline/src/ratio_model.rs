//! Compression-ratio modeling across error bounds, and the automatic
//! tolerance-allocation optimizer built on it.
//!
//! Two pieces of the paper's future work:
//!
//! * §II cites "compression ratio modeling and estimation across error
//!   bounds" (its reference \[28\]): predicting a compressor's ratio at an
//!   arbitrary tolerance from a handful of *probe* compressions.
//!   [`RatioModel`] fits a piecewise-linear model in log-tolerance /
//!   log-ratio space (compression ratios of error-bounded compressors are
//!   near power laws in the tolerance over wide ranges).
//! * §IV-D: "allocating a fixed proportion of the total tolerance to
//!   quantization does not consistently yield an optimal strategy ...
//!   This highlights the need for an optimization algorithm to automate
//!   the determination of the optimal strategy."
//!   [`crate::Planner::plan_optimal`] sweeps the quantization share and
//!   scores each candidate with the ratio model — no full-payload
//!   compression in the loop.

use errflow_compress::{CompressError, Compressor, ErrorBound};

/// A probed point: tolerance, achieved ratio, decode throughput.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioProbe {
    /// The pointwise/L2 tolerance the probe compressed at.
    pub tolerance: f64,
    /// Achieved compression ratio.
    pub ratio: f64,
    /// Measured decompression throughput in GB/s.
    pub decode_gbps: f64,
}

/// Piecewise-linear log-log model of compression ratio (and decode speed)
/// versus tolerance, fitted from probe compressions of a payload sample.
#[derive(Debug, Clone)]
pub struct RatioModel {
    /// Probes sorted by ascending tolerance.
    probes: Vec<RatioProbe>,
}

impl RatioModel {
    /// Probes `compressor` on `sample` at each tolerance (interpreted via
    /// `make_bound`, so the caller controls the bound mode) and fits the
    /// model.  The sample should be a representative slice of the real
    /// payload — probing is `O(sample)` per tolerance, independent of the
    /// full data volume.
    pub fn probe(
        compressor: &dyn Compressor,
        sample: &[f32],
        tolerances: &[f64],
        make_bound: impl Fn(f64) -> ErrorBound,
    ) -> Result<Self, CompressError> {
        assert!(!tolerances.is_empty(), "need at least one probe tolerance");
        assert!(!sample.is_empty(), "need a nonempty sample");
        let mut probes = Vec::with_capacity(tolerances.len());
        for &tol in tolerances {
            let bound = make_bound(tol);
            let (_, mut stats) = compressor.roundtrip(sample, &bound)?;
            // Stabilise decode timing on small samples.
            if stats.decompress_secs < 2e-3 {
                let stream = compressor.compress(sample, &bound)?;
                let reps = ((4e-3 / stats.decompress_secs.max(1e-7)) as usize).clamp(3, 100);
                let t0 = std::time::Instant::now();
                for _ in 0..reps {
                    compressor.decompress(&stream)?;
                }
                stats.decompress_secs = t0.elapsed().as_secs_f64() / reps as f64;
            }
            probes.push(RatioProbe {
                tolerance: tol,
                ratio: stats.ratio().max(1.0),
                decode_gbps: stats.decompress_gbps(),
            });
        }
        probes.sort_by(|a, b| a.tolerance.partial_cmp(&b.tolerance).expect("finite"));
        Ok(RatioModel { probes })
    }

    /// The fitted probe points.
    pub fn probes(&self) -> &[RatioProbe] {
        &self.probes
    }

    /// Predicted compression ratio at `tolerance` (log-log interpolation,
    /// clamped to the probed range).
    pub fn predict_ratio(&self, tolerance: f64) -> f64 {
        self.interpolate(tolerance, |p| p.ratio.ln()).exp()
    }

    /// Predicted decompression throughput at `tolerance`, GB/s.
    pub fn predict_decode_gbps(&self, tolerance: f64) -> f64 {
        self.interpolate(tolerance, |p| p.decode_gbps.max(1e-6).ln())
            .exp()
    }

    fn interpolate(&self, tolerance: f64, f: impl Fn(&RatioProbe) -> f64) -> f64 {
        let t = tolerance.max(1e-300).ln();
        let first = self.probes.first().expect("nonempty");
        let last = self.probes.last().expect("nonempty");
        if t <= first.tolerance.ln() {
            return f(first);
        }
        if t >= last.tolerance.ln() {
            return f(last);
        }
        for pair in self.probes.windows(2) {
            let (a, b) = (&pair[0], &pair[1]);
            let (ta, tb) = (a.tolerance.ln(), b.tolerance.ln());
            if t >= ta && t <= tb {
                let w = if tb > ta { (t - ta) / (tb - ta) } else { 0.0 };
                return f(a) * (1.0 - w) + f(b) * w;
            }
        }
        f(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use errflow_compress::SzCompressor;

    fn smooth(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| ((i as f32) * 0.01).sin() * 2.0 + 0.1 * ((i as f32) * 0.13).cos())
            .collect()
    }

    fn model() -> RatioModel {
        let sz = SzCompressor::default();
        RatioModel::probe(
            &sz,
            &smooth(20_000),
            &[1e-6, 1e-4, 1e-2],
            ErrorBound::abs_linf,
        )
        .unwrap()
    }

    #[test]
    fn probes_sorted_and_ratios_sensible() {
        let m = model();
        assert_eq!(m.probes().len(), 3);
        assert!(m
            .probes()
            .windows(2)
            .all(|p| p[0].tolerance < p[1].tolerance));
        assert!(m.probes().iter().all(|p| p.ratio >= 1.0));
    }

    #[test]
    fn prediction_matches_probes_exactly() {
        let m = model();
        for p in m.probes() {
            assert!((m.predict_ratio(p.tolerance) - p.ratio).abs() < 1e-9 * p.ratio);
        }
    }

    #[test]
    fn prediction_interpolates_monotonically() {
        let m = model();
        // Ratio grows with tolerance for these probes; interior predictions
        // must stay between the bracketing probes.
        let mid = m.predict_ratio(1e-3);
        let lo = m.predict_ratio(1e-4);
        let hi = m.predict_ratio(1e-2);
        assert!(mid >= lo.min(hi) && mid <= lo.max(hi), "{lo} {mid} {hi}");
    }

    #[test]
    fn prediction_clamps_outside_range() {
        let m = model();
        assert_eq!(m.predict_ratio(1e-12), m.predict_ratio(1e-6));
        assert_eq!(m.predict_ratio(1.0), m.predict_ratio(1e-2));
    }

    #[test]
    fn prediction_close_to_fresh_compression() {
        // Predict at an untouched tolerance and compare to ground truth —
        // the ref-[28] use case.
        let m = model();
        let sz = SzCompressor::default();
        let data = smooth(20_000);
        let (_, stats) = sz.roundtrip(&data, &ErrorBound::abs_linf(1e-3)).unwrap();
        let predicted = m.predict_ratio(1e-3);
        let actual = stats.ratio();
        assert!(
            (predicted / actual).ln().abs() < 0.7,
            "predicted {predicted:.1} vs actual {actual:.1}"
        );
    }

    #[test]
    fn decode_speed_prediction_positive() {
        let m = model();
        assert!(m.predict_decode_gbps(1e-3) > 0.0);
    }

    #[test]
    #[should_panic(expected = "nonempty sample")]
    fn empty_sample_panics() {
        let sz = SzCompressor::default();
        let _ = RatioModel::probe(&sz, &[], &[1e-3], ErrorBound::abs_linf);
    }
}
