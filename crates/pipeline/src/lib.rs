//! # errflow-pipeline
//!
//! The paper's Fig. 1 framework: given a trained network and a user
//! tolerance on the QoI, split the tolerance between weight quantization
//! and input compression, pick the configuration that maximises inference
//! throughput, and run the resulting error-bounded pipeline.
//!
//! * [`io`] — the HPC storage model (baseline 2.8 GB/s, the paper's
//!   Lustre figure) and effective I/O throughput of compressed reads
//!   (compression ratio vs. decompression CPU time — the Fig. 7/8 trade).
//! * [`stage`] — the load / preprocess / execute time breakdown of Fig. 2.
//! * [`planner`] — tolerance allocation (§IV-D): a configurable share of
//!   the QoI tolerance goes to quantization, the fastest format whose
//!   predicted bound fits is chosen, and *all unutilized tolerance* is
//!   re-allocated to compression.

pub mod io;
pub mod planner;
pub mod ratio_model;
pub mod stage;

pub use io::StorageModel;
pub use planner::{PayloadLayout, PipelinePlan, PipelineReport, Planner, PlannerConfig};
pub use ratio_model::RatioModel;
pub use stage::TimeBreakdown;
