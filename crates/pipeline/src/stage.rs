//! Inference-pipeline stage timing — the Fig. 2 breakdown.
//!
//! Fig. 2 decomposes end-to-end inference into data loading, preprocessing,
//! and model execution, showing that execution dominates for deep ResNets
//! while loading is substantial for shallow/small models.  Loading uses the
//! [`crate::io::StorageModel`]; preprocessing is a bytes-proportional CPU
//! cost; execution uses the calibrated [`ExecutionModel`] (DESIGN.md §3,
//! substitution 3).

use crate::io::StorageModel;
use errflow_quant::throughput::ExecutionModel;
use errflow_quant::QuantFormat;

/// Per-stage time for processing a batch, in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimeBreakdown {
    /// Reading the input bytes from storage.
    pub load_secs: f64,
    /// Normalization / layout preprocessing.
    pub preprocess_secs: f64,
    /// Model execution.
    pub execute_secs: f64,
}

impl TimeBreakdown {
    /// Total pipeline time.
    pub fn total_secs(&self) -> f64 {
        self.load_secs + self.preprocess_secs + self.execute_secs
    }

    /// Percentage of time in each stage `(load, preprocess, execute)`.
    pub fn percentages(&self) -> (f64, f64, f64) {
        let t = self.total_secs();
        if t <= 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            100.0 * self.load_secs / t,
            100.0 * self.preprocess_secs / t,
            100.0 * self.execute_secs / t,
        )
    }
}

/// Sustained preprocessing throughput (normalization + layout), GB/s.
/// Calibrated to a single-core scale so preprocessing is visible but not
/// dominant, as in Fig. 2.
const PREPROCESS_GBPS: f64 = 8.0;

/// Computes the Fig. 2 stage breakdown for `n_samples` samples of
/// `input_bytes` each through a model of `flops` FLOPs in `format`.
pub fn breakdown(
    storage: &StorageModel,
    exec: &ExecutionModel,
    n_samples: usize,
    input_bytes: usize,
    flops: f64,
    format: QuantFormat,
) -> TimeBreakdown {
    let total_bytes = n_samples * input_bytes;
    TimeBreakdown {
        load_secs: storage.read_secs(total_bytes),
        preprocess_secs: total_bytes as f64 / (PREPROCESS_GBPS * 1e9),
        execute_secs: exec.sample_latency(flops, format) * n_samples as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn models() -> (StorageModel, ExecutionModel) {
        (StorageModel::default(), ExecutionModel::default())
    }

    #[test]
    fn percentages_sum_to_100() {
        let (s, e) = models();
        let b = breakdown(&s, &e, 1000, 4096, 33.7e6, QuantFormat::Fp32);
        let (l, p, x) = b.percentages();
        assert!((l + p + x - 100.0).abs() < 1e-9);
        assert!(l > 0.0 && p > 0.0 && x > 0.0);
    }

    #[test]
    fn execution_dominates_for_big_models() {
        // Fig. 2: ResNet-50-class models spend most time in execution.
        let (s, e) = models();
        let b = breakdown(&s, &e, 1000, 4096, 4.0e9, QuantFormat::Fp32);
        let (_, _, x) = b.percentages();
        assert!(x > 80.0, "execute share = {x}%");
    }

    #[test]
    fn loading_matters_for_small_models() {
        // Fig. 2: mlp_s is load/preprocess-dominated.
        let (s, e) = models();
        let b = breakdown(&s, &e, 1000, 4096, 0.5e6, QuantFormat::Fp32);
        let (l, p, x) = b.percentages();
        assert!(l + p > x, "load+pre={l}+{p} vs exec={x}");
    }

    #[test]
    fn quantization_shrinks_execution_share() {
        let (s, e) = models();
        let fp32 = breakdown(&s, &e, 100, 4096, 33.7e6, QuantFormat::Fp32);
        let fp16 = breakdown(&s, &e, 100, 4096, 33.7e6, QuantFormat::Fp16);
        assert!(fp16.execute_secs < fp32.execute_secs);
        assert_eq!(fp16.load_secs, fp32.load_secs);
    }

    #[test]
    fn zero_samples_zero_time() {
        let (s, e) = models();
        let b = breakdown(&s, &e, 0, 4096, 1e6, QuantFormat::Fp32);
        assert_eq!(b.total_secs(), 0.0);
        assert_eq!(b.percentages(), (0.0, 0.0, 0.0));
    }
}
