//! Simulated HPC storage and effective I/O throughput of compressed reads.
//!
//! The paper's experiments read from a Lustre filesystem with a measured
//! baseline of 2.8 GB/s.  No parallel filesystem exists here (DESIGN.md §3,
//! substitution 4), so reads are modeled as `bytes / bandwidth` while the
//! *decompression* cost is the real, measured CPU time of this crate's
//! compressors — preserving the paper's core I/O trade-off: compression
//! shrinks the bytes moved but adds decode time, and at tight tolerances
//! SZ/MGARD decode time can erase the bandwidth win (Fig. 7) while ZFP
//! stays flat.

use errflow_compress::CompressionStats;

/// A bandwidth-limited storage tier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StorageModel {
    /// Sustained read bandwidth in GB/s.
    pub bandwidth_gbps: f64,
}

impl Default for StorageModel {
    /// The paper's baseline: 2.8 GB/s.
    fn default() -> Self {
        StorageModel {
            bandwidth_gbps: 2.8,
        }
    }
}

impl StorageModel {
    /// Creates a storage model with the given bandwidth.
    pub fn new(bandwidth_gbps: f64) -> Self {
        assert!(bandwidth_gbps > 0.0, "bandwidth must be positive");
        StorageModel { bandwidth_gbps }
    }

    /// Seconds to read `bytes` uncompressed.
    pub fn read_secs(&self, bytes: usize) -> f64 {
        bytes as f64 / (self.bandwidth_gbps * 1e9)
    }

    /// Effective I/O throughput (GB/s of *original* data delivered) when
    /// reading a compressed stream and decompressing it:
    /// `original / (compressed/bandwidth + decompress_time)`.
    pub fn effective_read_gbps(&self, stats: &CompressionStats) -> f64 {
        let read = self.read_secs(stats.compressed_bytes);
        let total = read + stats.decompress_secs;
        if total <= 0.0 {
            return f64::INFINITY;
        }
        stats.original_bytes as f64 / total / 1e9
    }

    /// Uncompressed-read throughput — the baseline every Fig. 7/8 curve is
    /// compared against (trivially the raw bandwidth).
    pub fn baseline_gbps(&self) -> f64 {
        self.bandwidth_gbps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(ratio: f64, decompress_secs: f64) -> CompressionStats {
        CompressionStats {
            original_bytes: 1_000_000_000,
            compressed_bytes: (1_000_000_000f64 / ratio) as usize,
            compress_secs: 0.0,
            decompress_secs,
        }
    }

    #[test]
    fn baseline_matches_paper() {
        assert_eq!(StorageModel::default().baseline_gbps(), 2.8);
    }

    #[test]
    fn read_secs_linear() {
        let s = StorageModel::new(2.0);
        assert!((s.read_secs(2_000_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn high_ratio_fast_decode_beats_baseline() {
        let s = StorageModel::default();
        // 10x ratio, decode at 10 GB/s (0.1 s for 1 GB).
        let eff = s.effective_read_gbps(&stats(10.0, 0.1));
        assert!(eff > s.baseline_gbps(), "eff={eff}");
    }

    #[test]
    fn slow_decode_erases_the_win() {
        let s = StorageModel::default();
        // 10x ratio but 1 GB/s decode: effective < baseline.
        let eff = s.effective_read_gbps(&stats(10.0, 1.0));
        assert!(eff < s.baseline_gbps(), "eff={eff}");
    }

    #[test]
    fn effective_improves_with_ratio_at_fixed_decode_speed() {
        let s = StorageModel::default();
        let e2 = s.effective_read_gbps(&stats(2.0, 0.05));
        let e20 = s.effective_read_gbps(&stats(20.0, 0.05));
        assert!(e20 > e2);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        StorageModel::new(0.0);
    }
}
