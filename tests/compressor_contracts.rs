//! Integration tests of the compressor contracts on *realistic* scientific
//! payloads (the synthetic workload fields), not just synthetic sinusoids:
//! error bounds hold, ratios behave, and the paper's backend orderings
//! emerge.

use errflow::prelude::*;
use errflow::scidata::TaskKind;

fn payload(kind: TaskKind) -> Vec<f32> {
    SyntheticTask::of_kind_small(kind, 5)
        .compression_payload()
        .to_vec()
}

#[test]
fn all_backends_honour_linf_bounds_on_all_workloads() {
    for kind in TaskKind::ALL {
        let data = payload(kind);
        for backend in errflow::compress::all_backends() {
            for tol in [1e-2, 1e-4, 1e-6] {
                let bound = ErrorBound::rel_linf(tol);
                let stream = backend.compress(&data, &bound).unwrap();
                let recon = backend.decompress(&stream).unwrap();
                assert!(
                    bound.verify(&data, &recon),
                    "{}/{kind:?} tol={tol}",
                    backend.name()
                );
            }
        }
    }
}

#[test]
fn sz_and_mgard_honour_l2_bounds_zfp_rejects() {
    let data = payload(TaskKind::H2Combustion);
    let bound = ErrorBound::rel_l2(1e-4);
    for backend in errflow::compress::all_backends() {
        if backend.name() == "zfp" {
            assert!(!backend.supports(&bound));
            assert!(backend.compress(&data, &bound).is_err());
        } else {
            let recon = backend
                .decompress(&backend.compress(&data, &bound).unwrap())
                .unwrap();
            assert!(bound.verify(&data, &recon), "{}", backend.name());
        }
    }
}

#[test]
fn smooth_h2_field_compresses_better_than_rough_borghesi_gradients() {
    // The paper: the vortex-concentrated H2 data "is easier to compress and
    // it achieves a high compression ratio even for small tolerance levels".
    let h2 = payload(TaskKind::H2Combustion);
    let bo = payload(TaskKind::BorghesiFlame);
    let sz = SzCompressor::default();
    let bound = ErrorBound::rel_linf(1e-4);
    let r_h2 = (h2.len() * 4) as f64 / sz.compress(&h2, &bound).unwrap().len() as f64;
    let r_bo = (bo.len() * 4) as f64 / sz.compress(&bo, &bound).unwrap().len() as f64;
    assert!(
        r_h2 > r_bo,
        "H2 ratio {r_h2:.1} should beat Borghesi ratio {r_bo:.1}"
    );
}

#[test]
fn ratios_monotone_in_tolerance_for_all_backends() {
    let data = payload(TaskKind::H2Combustion);
    for backend in errflow::compress::all_backends() {
        let mut last = usize::MAX;
        for tol in [1e-2, 1e-3, 1e-4, 1e-5] {
            let n = backend
                .compress(&data, &ErrorBound::rel_linf(tol))
                .unwrap()
                .len();
            assert!(
                n >= last.min(n),
                "{}: stream grew smaller at tighter tol",
                backend.name()
            );
            // Allow equality (header-dominated regimes) but no shrinking.
            assert!(n + 64 >= last.min(n + 64));
            last = n;
        }
    }
}

#[test]
fn roundtrip_stats_are_consistent() {
    let data = payload(TaskKind::EuroSat);
    for backend in errflow::compress::all_backends() {
        let (recon, stats) = backend
            .roundtrip(&data, &ErrorBound::rel_linf(1e-3))
            .unwrap();
        assert_eq!(recon.len(), data.len());
        assert_eq!(stats.original_bytes, data.len() * 4);
        assert!(stats.compressed_bytes > 0);
        assert!(stats.ratio() > 1.0, "{}", backend.name());
    }
}
