//! Integration tests of the future-work extensions working together on the
//! real workloads: chunked-parallel compression inside the planner, the
//! ratio-model optimizer, 2-D SZ on task fields, model save/load, and
//! row-wise quantization against the refined bound.

use errflow::compress::chunked::ChunkedCompressor;
use errflow::compress::sz2d::Sz2dCompressor;
use errflow::core::NetworkAnalysis;
use errflow::nn::io::{load_mlp, save_mlp};
use errflow::nn::Model;
use errflow::pipeline::planner::{flatten, PayloadLayout};
use errflow::prelude::*;
use errflow::quant::rowwise::{quantize_int8_rowwise, rowwise_injection, rowwise_int8_steps};
use errflow::scidata::task::TrainingMode;
use errflow::scidata::{TaskKind, TaskModel};
use errflow::tensor::norms::diff_norm;

#[test]
fn chunked_backend_in_planner_is_sound_and_consistent() {
    let task = SyntheticTask::h2_combustion_small(17);
    let model = task.trained_model(TrainingMode::Psn, 5);
    let cal: Vec<Vec<f32>> = task.ordered_inputs().iter().take(32).cloned().collect();
    let planner = Planner::new(&model, &cal);
    let plan = planner.plan(&PlannerConfig {
        rel_tolerance: 1e-2,
        norm: Norm::L2,
        quant_share: 0.4,
    });
    let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(200).cloned().collect();
    let chunked = ChunkedCompressor::new(SzCompressor::default()).with_chunk_values(512);
    let report = planner
        .execute(
            &plan,
            &chunked,
            &inputs,
            Norm::L2,
            PayloadLayout::FeatureMajor,
        )
        .unwrap();
    assert!(report.achieved_rel_error.max <= report.predicted_rel_bound);
}

#[test]
fn ratio_model_predicts_task_payload_ratios() {
    let task = SyntheticTask::h2_combustion_small(18);
    let payload = task.compression_payload();
    let sz = SzCompressor::default();
    let model = errflow::pipeline::RatioModel::probe(
        &sz,
        &payload[..payload.len() / 2],
        &[1e-5, 1e-3, 1e-1],
        ErrorBound::rel_linf,
    )
    .unwrap();
    // Predict on the *other* half at an unseen tolerance.
    let (_, stats) = sz
        .roundtrip(&payload[payload.len() / 2..], &ErrorBound::rel_linf(1e-2))
        .unwrap();
    let predicted = model.predict_ratio(1e-2);
    assert!(
        (predicted / stats.ratio()).ln().abs() < 1.0,
        "predicted {predicted:.1}x vs actual {:.1}x",
        stats.ratio()
    );
}

#[test]
fn sz2d_honours_bounds_on_task_fields() {
    // The H2 species fields are genuine 2-D grids; compress one as such.
    let w = errflow::scidata::h2::generate(32, 50, 19);
    let field = &w.species_fields[0];
    let sz2d = Sz2dCompressor::new();
    for tol in [1e-3, 1e-5] {
        let bound = ErrorBound::abs_linf(tol);
        let stream = sz2d
            .compress(&field.data, field.nx, field.ny, &bound)
            .unwrap();
        let (recon, nx, ny) = sz2d.decompress(&stream).unwrap();
        assert_eq!((nx, ny), (field.nx, field.ny));
        assert!(bound.verify(&field.data, &recon), "tol={tol}");
    }
}

#[test]
fn saved_model_reproduces_bounds_and_outputs() {
    let task = SyntheticTask::h2_combustion_small(20);
    let model = task.trained_model(TrainingMode::Psn, 5);
    let TaskModel::Mlp(mlp) = &model else {
        panic!("h2 is an MLP")
    };
    let loaded = load_mlp(&save_mlp(mlp)).unwrap();
    // Identical outputs…
    for x in task.ordered_inputs().iter().take(20) {
        assert_eq!(mlp.forward(x), loaded.forward(x));
    }
    // …and identical error bounds.
    let a1 = NetworkAnalysis::of(mlp);
    let a2 = NetworkAnalysis::of(&loaded);
    assert!((a1.amplification() - a2.amplification()).abs() < 1e-9);
    for f in QuantFormat::REDUCED {
        assert!(
            (a1.quantization_bound(f) - a2.quantization_bound(f)).abs()
                < 1e-9 * a1.quantization_bound(f).max(1e-12)
        );
    }
}

#[test]
fn rowwise_quantization_respects_refined_bound() {
    // Row-wise INT8 on a trained layer: observed injection per unit input
    // magnitude must stay below the refined ‖q‖₂/(2√3) bound.
    let task = SyntheticTask::h2_combustion_small(21);
    let model = task.trained_model(TrainingMode::Psn, 5);
    let TaskModel::Mlp(mlp) = &model else {
        panic!("h2 is an MLP")
    };
    let layer = &mlp.layers()[0];
    let w = layer.weights();
    let wq = quantize_int8_rowwise(w).dequantize();
    let steps = rowwise_int8_steps(w);
    let refined = rowwise_injection(&steps);
    // ‖ΔW·h‖₂ ≤ (√3 margin over the concentration limit) · ‖h‖₂.
    for x in task.ordered_inputs().iter().take(30) {
        let clean = w.matvec(x).unwrap();
        let noisy = wq.matvec(x).unwrap();
        let err = diff_norm(&clean, &noisy, Norm::L2);
        let h_norm = errflow::tensor::norms::l2(x);
        // The concentration value is an asymptotic mean; allow the usual
        // 2√3 worst-case factor.
        assert!(
            err <= refined * 2.0 * 3f64.sqrt() * h_norm + 1e-9,
            "err={err} refined={refined} ‖h‖={h_norm}"
        );
    }
}

#[test]
fn all_tasks_roundtrip_through_planner_with_all_extensions() {
    for kind in TaskKind::ALL {
        let task = SyntheticTask::of_kind_small(kind, 22);
        let model = task.trained_model(TrainingMode::Psn, 4);
        let cal: Vec<Vec<f32>> = task.ordered_inputs().iter().take(32).cloned().collect();
        let planner = Planner::new_calibrated(&model, &cal, 1.5);
        let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(60).cloned().collect();
        let layout = match kind {
            TaskKind::EuroSat => PayloadLayout::SampleMajor,
            _ => PayloadLayout::FeatureMajor,
        };
        let payload = flatten(&inputs, layout);
        let sz = SzCompressor::default();
        let (plan, _) = planner
            .plan_optimal(1e-1, Norm::L2, &sz, &payload, inputs[0].len())
            .unwrap();
        let report = planner
            .execute(&plan, &sz, &inputs, Norm::L2, layout)
            .unwrap();
        assert!(
            report.achieved_rel_error.max <= report.predicted_rel_bound,
            "{kind:?}"
        );
    }
}
