//! Cross-crate integration tests: the paper's central claim — predicted
//! bounds dominate achieved errors for every task, compressor, format, and
//! norm — exercised end-to-end through the public facade.

use errflow::core::{quantize_model, ErrorFlow, NetworkAnalysis};
use errflow::pipeline::planner::{flatten, unflatten, PayloadLayout};
use errflow::prelude::*;
use errflow::scidata::task::TrainingMode;
use errflow::scidata::TaskKind;
use errflow::tensor::norms::diff_norm;

fn prepare(kind: TaskKind) -> (SyntheticTask, errflow::scidata::TaskModel) {
    let task = SyntheticTask::of_kind_small(kind, 99);
    let model = task.trained_model(TrainingMode::Psn, 5);
    (task, model)
}

fn layout(kind: TaskKind) -> PayloadLayout {
    match kind {
        TaskKind::EuroSat => PayloadLayout::SampleMajor,
        _ => PayloadLayout::FeatureMajor,
    }
}

#[test]
fn combined_bound_holds_for_every_task_compressor_and_format() {
    for kind in TaskKind::ALL {
        let (task, model) = prepare(kind);
        let analysis = NetworkAnalysis::of(&model);
        let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(60).cloned().collect();
        let lay = layout(kind);
        let payload = flatten(&inputs, lay);
        for backend in errflow::compress::all_backends() {
            let bound_spec = ErrorBound::abs_linf(1e-4);
            let stream = backend.compress(&payload, &bound_spec).unwrap();
            let recon_payload = backend.decompress(&stream).unwrap();
            let recon = unflatten(&recon_payload, inputs.len(), inputs[0].len(), lay);
            for format in [QuantFormat::Fp16, QuantFormat::Int8] {
                let qm = quantize_model(&model, format);
                for (x, xt) in inputs.iter().zip(&recon).take(20) {
                    let dx = diff_norm(x, xt, Norm::L2);
                    let predicted = analysis.combined_bound(dx, format).total();
                    let flow = ErrorFlow::decompose(&model, &qm, x, xt);
                    for norm in [Norm::L2, Norm::LInf] {
                        assert!(
                            flow.total_error(norm) <= predicted + 1e-9,
                            "{kind:?}/{}/{format}: {} > {predicted}",
                            backend.name(),
                            flow.total_error(norm)
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn error_flow_legs_individually_bounded() {
    let (task, model) = prepare(TaskKind::H2Combustion);
    let analysis = NetworkAnalysis::of(&model);
    let qm = quantize_model(&model, QuantFormat::Bf16);
    let sz = SzCompressor::default();
    let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(30).cloned().collect();
    for x in &inputs {
        let stream = sz.compress(x, &ErrorBound::abs_l2(1e-3)).unwrap();
        let xt = sz.decompress(&stream).unwrap();
        let dx = diff_norm(x, &xt, Norm::L2);
        let flow = ErrorFlow::decompose(&model, &qm, x, &xt);
        assert!(flow.compression_error(Norm::L2) <= analysis.compression_bound(dx) + 1e-9);
        assert!(
            flow.quantization_error(Norm::L2)
                <= analysis.combined_bound(dx, QuantFormat::Bf16).quantization + 1e-9
        );
    }
}

#[test]
fn planner_end_to_end_never_violates_tolerance() {
    for kind in TaskKind::ALL {
        let (task, model) = prepare(kind);
        let calibration: Vec<Vec<f32>> = task.ordered_inputs().iter().take(32).cloned().collect();
        let planner = Planner::new(&model, &calibration);
        let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(80).cloned().collect();
        for norm in [Norm::L2, Norm::LInf] {
            for tol in [1e-3, 1e-1] {
                for share in [0.2, 0.8] {
                    let plan = planner.plan(&PlannerConfig {
                        rel_tolerance: tol,
                        norm,
                        quant_share: share,
                    });
                    // The plan itself must respect the budget split.
                    assert!(plan.predicted_total_bound <= plan.abs_tolerance * (1.0 + 1e-12));
                    let report = planner
                        .execute(&plan, &SzCompressor::default(), &inputs, norm, layout(kind))
                        .unwrap();
                    assert!(
                        report.achieved_rel_error.max <= report.predicted_rel_bound + 1e-12,
                        "{kind:?} norm={norm} tol={tol} share={share}: {} > {}",
                        report.achieved_rel_error.max,
                        report.predicted_rel_bound
                    );
                }
            }
        }
    }
}

#[test]
fn per_feature_bounds_hold_across_tasks() {
    for kind in [TaskKind::H2Combustion, TaskKind::BorghesiFlame] {
        let (task, model) = prepare(kind);
        let analysis = NetworkAnalysis::of(&model);
        let format = QuantFormat::Fp16;
        let qm = quantize_model(&model, format);
        let bounds = analysis.per_feature_bounds(0.0, format);
        assert_eq!(bounds.len(), task.output_dim());
        for x in task.ordered_inputs().iter().take(40) {
            let y = model.forward(x);
            let yq = qm.forward(x);
            for (i, (&a, &b)) in y.iter().zip(&yq).enumerate() {
                assert!(
                    ((a - b).abs() as f64) <= bounds[i] + 1e-9,
                    "{kind:?} feature {i}"
                );
            }
        }
    }
}
