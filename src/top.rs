//! `errflow-cli top`: a live ANSI terminal dashboard over the telemetry
//! plane of a running errflow server.
//!
//! Each frame issues one binary metrics scrape plus one health request
//! over EFNP ([`crate::net::proto`]) and renders throughput, per-stage
//! latency sparklines, cache/scratch hit rates, the bound-margin
//! distribution, and SLO badges.  Everything below the connection loop is
//! a pure `&data -> String` render function, unit-tested without a
//! server or a terminal; `std` only, like the rest of the workspace.
//!
//! The dashboard is read-only by construction: metrics frames are
//! answered on the server's io threads, so watching a loaded server from
//! `top` never competes with its request path.

use crate::net::proto::{HistogramDump, ScrapePayload, TIER_ALL};
use crate::net::{MetricsFormat, NetClient};
use crate::obs::slo::{SloState, SloStatus};
use crate::obs::timeseries::Point;
use std::time::Duration;

/// Unicode lower-block ramp used for sparklines (1/8 → 8/8).
const RAMP: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Stages shown in the per-stage panel, in pipeline order.  A stage whose
/// histogram recorded nothing (e.g. ingress/egress before any wire
/// traffic) is omitted from the frame entirely.
const STAGES: [(&str, &str); 7] = [
    ("ingress", "serve.stage.ingress_ns"),
    ("batch_wait", "serve.stage.batch_wait_ns"),
    ("plan", "serve.stage.plan_ns"),
    ("decompress", "serve.stage.decompress_ns"),
    ("forward", "serve.stage.forward_ns"),
    ("respond", "serve.stage.respond_ns"),
    ("egress", "serve.stage.egress_ns"),
];

/// How `top` runs: refresh interval and an optional frame budget
/// (`--frames N` renders N frames then exits — CI and tests use this).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopConfig {
    /// Server address (`host:port`).
    pub addr: String,
    /// Milliseconds between frames.
    pub interval_ms: u64,
    /// Render this many frames then exit; `None` runs until the
    /// connection drops or the process is interrupted.
    pub frames: Option<u64>,
}

/// Renders a sparkline of the last `width` points, scaled to the window's
/// own min..max.  Empty input renders as empty.
pub fn sparkline(points: &[Point], width: usize) -> String {
    if points.is_empty() || width == 0 {
        return String::new();
    }
    let tail = &points[points.len().saturating_sub(width)..];
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for p in tail {
        lo = lo.min(p.v);
        hi = hi.max(p.v);
    }
    let span = (hi - lo).max(f64::MIN_POSITIVE);
    tail.iter()
        .map(|p| {
            let level = (((p.v - lo) / span) * 7.0).round().clamp(0.0, 7.0) as usize;
            RAMP[level]
        })
        .collect()
}

/// Formats a quantity with an SI suffix (`1.23k`, `4.5M`), keeping small
/// values plain.
pub fn fmt_si(v: f64) -> String {
    let a = v.abs();
    if !v.is_finite() {
        "-".to_string()
    } else if a >= 1e9 {
        format!("{:.2}G", v / 1e9)
    } else if a >= 1e6 {
        format!("{:.2}M", v / 1e6)
    } else if a >= 1e3 {
        format!("{:.2}k", v / 1e3)
    } else if a >= 10.0 || a == 0.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Formats nanoseconds human-readably (`850ns`, `3.2µs`, `1.4ms`, `2.1s`).
pub fn fmt_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "-".to_string()
    } else if ns < 1e3 {
        format!("{ns:.0}ns")
    } else if ns < 1e6 {
        format!("{:.1}µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.1}ms", ns / 1e6)
    } else {
        format!("{:.2}s", ns / 1e9)
    }
}

/// The `[ OK ]` / `[WARN]` / `[BRCH]` badge for an SLO state, with ANSI
/// color when `color` is set.
pub fn badge(state: SloState, color: bool) -> String {
    let (txt, code) = match state {
        SloState::Ok => ("[ OK ]", "32"),
        SloState::Warn => ("[WARN]", "33"),
        SloState::Breach => ("[BRCH]", "31"),
    };
    if color {
        format!("\x1b[{code}m{txt}\x1b[0m")
    } else {
        txt.to_string()
    }
}

/// Tier-0 points of `name` in the scrape, oldest first.
fn series<'a>(payload: &'a ScrapePayload, name: &str) -> &'a [Point] {
    payload
        .dump
        .tiers
        .first()
        .and_then(|t| t.series.iter().find(|s| s.name == name))
        .map(|s| s.points.as_slice())
        .unwrap_or(&[])
}

fn last_v(points: &[Point]) -> Option<f64> {
    points.last().map(|p| p.v)
}

fn hist<'a>(payload: &'a ScrapePayload, name: &str) -> Option<&'a HistogramDump> {
    payload.hists.iter().find(|h| h.name == name)
}

/// Latest-point hit rate of two counter-rate series, or the cumulative
/// ratio of two histogram-free counters when rates are idle.
fn rate_ratio(payload: &ScrapePayload, hits: &str, misses: &str) -> Option<f64> {
    let h = last_v(series(payload, hits))?;
    let m = last_v(series(payload, misses)).unwrap_or(0.0);
    if h + m <= 0.0 {
        None
    } else {
        Some(h / (h + m))
    }
}

/// Renders the bound-margin distribution (how much of the requested
/// tolerance each certificate consumed) as percentage bars over coarse
/// margin bins.  Returns one line per non-empty bin.
pub fn render_bound_margin(h: &HistogramDump, bar_width: usize) -> Vec<String> {
    // Margin was recorded as round(ratio·1e6) on the log₂ grid; bucket i
    // covers [2^i, 2^(i+1))/1e6 of tolerance.  Fold into human bins.
    const BINS: [(&str, f64); 5] = [
        ("<0.1%", 0.001),
        ("<1%  ", 0.01),
        ("<10% ", 0.1),
        ("<50% ", 0.5),
        ("≤100%", 1.01),
    ];
    let mut counts = [0u64; 6];
    let mut total = 0u64;
    for &(idx, c) in &h.buckets {
        let mid = 1.5 * 2f64.powi(idx as i32) / 1e6;
        let bin = BINS
            .iter()
            .position(|&(_, ub)| mid < ub)
            .unwrap_or(BINS.len());
        counts[bin] += c;
        total += c;
    }
    if total == 0 {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (bin, &(label, _)) in BINS.iter().enumerate() {
        let c = counts[bin];
        if c == 0 {
            continue;
        }
        let frac = c as f64 / total as f64;
        let filled = ((frac * bar_width as f64).ceil() as usize).min(bar_width);
        out.push(format!(
            "    {label} {:5.1}% {}",
            frac * 100.0,
            "█".repeat(filled)
        ));
    }
    if counts[BINS.len()] > 0 {
        out.push(format!(
            "    >100% {:5.1}% ← BROKEN CERTIFICATE",
            counts[BINS.len()] as f64 / total as f64 * 100.0
        ));
    }
    out
}

/// Renders one full dashboard frame from a binary scrape and the SLO
/// statuses.  Pure; `color` toggles ANSI escapes in the badges.
pub fn render_frame(
    payload: &ScrapePayload,
    statuses: &[SloStatus],
    addr: &str,
    color: bool,
) -> String {
    const SPARK_W: usize = 40;
    let mut out = String::with_capacity(2048);
    out.push_str(&format!("errflow top — {addr}\n"));

    // Throughput: completed-requests rate (tier 0, 1/s points).
    let rps = series(payload, "serve.completed");
    out.push_str(&format!(
        "  throughput  {:>8} req/s  {}\n",
        fmt_si(last_v(rps).unwrap_or(0.0)),
        sparkline(rps, SPARK_W)
    ));
    let q = series(payload, "serve.queue_depth");
    if let Some(depth) = last_v(q) {
        out.push_str(&format!(
            "  queue depth {:>8}        {}\n",
            fmt_si(depth),
            sparkline(q, SPARK_W)
        ));
    }
    if let Some(mbps) = last_v(series(payload, "serve.decomp_mbps")) {
        out.push_str(&format!("  decode      {:>8} MB/s\n", fmt_si(mbps)));
    }

    // Hit rates (rate-based; falls back to silence when idle).
    let mut rates = Vec::new();
    if let Some(r) = rate_ratio(payload, "serve.plan_cache.hits", "serve.plan_cache.misses") {
        rates.push(format!("plan-cache {:.1}%", r * 100.0));
    }
    if let Some(r) = rate_ratio(payload, "compress.scratch.hits", "compress.scratch.misses") {
        rates.push(format!("scratch {:.1}%", r * 100.0));
    }
    if !rates.is_empty() {
        out.push_str(&format!("  hit rates   {}\n", rates.join("   ")));
    }

    // Per-stage latencies: p50/p99 of the last interval, p99 sparkline.
    out.push_str("  stages              p50        p99\n");
    for (label, base) in STAGES {
        // Omit stages that never recorded (count == 0 in the live dump).
        if hist(payload, base).map_or(true, |h| h.count == 0) {
            continue;
        }
        let p50 = last_v(series(payload, &format!("{base}.p50")));
        let p99s = series(payload, &format!("{base}.p99"));
        out.push_str(&format!(
            "    {label:<11} {:>9}  {:>9}  {}\n",
            p50.map(fmt_ns).unwrap_or_else(|| "-".into()),
            last_v(p99s).map(fmt_ns).unwrap_or_else(|| "-".into()),
            sparkline(p99s, SPARK_W)
        ));
    }

    // Bound-margin distribution.
    if let Some(h) = hist(payload, "serve.bound_margin") {
        let lines = render_bound_margin(h, 24);
        if !lines.is_empty() {
            out.push_str(&format!(
                "  bound margin (tolerance consumed, {} certs)\n",
                fmt_si(h.count as f64)
            ));
            for l in lines {
                out.push_str(&l);
                out.push('\n');
            }
        }
    }

    // SLO badges.
    if !statuses.is_empty() {
        out.push_str("  slo\n");
        for s in statuses {
            out.push_str(&format!(
                "    {} {:<20} value {:.4}  threshold {:.4}\n",
                badge(s.state, color),
                s.name,
                s.value,
                s.threshold
            ));
        }
    }
    out
}

/// Runs the live dashboard: connect, then scrape + render once per
/// interval.  Returns an error string on connection failure (after the
/// first frame, a dropped connection ends the loop cleanly).
pub fn run_top(cfg: &TopConfig) -> Result<(), String> {
    let mut client =
        NetClient::connect(&cfg.addr).map_err(|e| format!("connect {}: {e}", cfg.addr))?;
    client
        .set_read_timeout(Some(Duration::from_secs(5)))
        .map_err(|e| format!("set timeout: {e}"))?;
    let mut rendered = 0u64;
    loop {
        let payload = match client.scrape(MetricsFormat::Binary, TIER_ALL, 512) {
            Ok(crate::net::MetricsResponseFrame::Binary(p)) => p,
            Ok(_) => return Err("server sent a text response to a binary scrape".into()),
            Err(e) => {
                if rendered > 0 {
                    eprintln!("connection lost: {e}");
                    return Ok(());
                }
                return Err(format!("scrape: {e}"));
            }
        };
        let statuses = client.health().map_err(|e| format!("health: {e}"))?;
        // Clear + home, then the frame; plain prints keep this testable.
        print!(
            "\x1b[2J\x1b[H{}",
            render_frame(&payload, &statuses, &cfg.addr, true)
        );
        use std::io::Write;
        let _ = std::io::stdout().flush();
        rendered += 1;
        if let Some(n) = cfg.frames {
            if rendered >= n {
                return Ok(());
            }
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms.max(16)));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::proto::{HistogramDump, ScrapePayload};
    use crate::obs::timeseries::{Point, SeriesDump, TierDump, TieredDump};

    fn pts(vals: &[f64]) -> Vec<Point> {
        vals.iter()
            .enumerate()
            .map(|(i, &v)| Point {
                t_ms: 1000 * (i as u64 + 1),
                v,
            })
            .collect()
    }

    fn payload() -> ScrapePayload {
        ScrapePayload {
            dump: TieredDump {
                now_ms: 60_000,
                tiers: vec![TierDump {
                    tier: 0,
                    step_ms: 1000,
                    series: vec![
                        SeriesDump {
                            name: "serve.completed".into(),
                            points: pts(&[100.0, 150.0, 120.0, 180.0]),
                        },
                        SeriesDump {
                            name: "serve.queue_depth".into(),
                            points: pts(&[2.0, 5.0, 3.0]),
                        },
                        SeriesDump {
                            name: "serve.stage.forward_ns.p50".into(),
                            points: pts(&[400_000.0, 420_000.0]),
                        },
                        SeriesDump {
                            name: "serve.stage.forward_ns.p99".into(),
                            points: pts(&[900_000.0, 1_200_000.0]),
                        },
                        SeriesDump {
                            name: "serve.plan_cache.hits".into(),
                            points: pts(&[99.0]),
                        },
                        SeriesDump {
                            name: "serve.plan_cache.misses".into(),
                            points: pts(&[1.0]),
                        },
                    ],
                }],
            },
            hists: vec![
                HistogramDump {
                    name: "serve.stage.forward_ns".into(),
                    count: 500,
                    sum: 1,
                    buckets: vec![(19, 500)],
                },
                HistogramDump {
                    name: "serve.stage.ingress_ns".into(),
                    count: 0,
                    sum: 0,
                    buckets: vec![],
                },
                HistogramDump {
                    name: "serve.bound_margin".into(),
                    count: 300,
                    sum: 0,
                    // ~2.1% and ~26% margin bins.
                    buckets: vec![(14, 200), (18, 100)],
                },
            ],
        }
    }

    #[test]
    fn sparkline_scales_to_window() {
        let s = sparkline(&pts(&[0.0, 0.5, 1.0]), 10);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with('▁') && s.ends_with('█'), "{s}");
        assert_eq!(sparkline(&[], 10), "");
        // Constant series renders at the floor, not NaN.
        let flat = sparkline(&pts(&[5.0, 5.0]), 10);
        assert_eq!(flat, "▁▁");
        // Width truncates to the most recent points.
        let w2 = sparkline(&pts(&[0.0, 1.0, 2.0, 3.0]), 2);
        assert_eq!(w2.chars().count(), 2);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_si(0.0), "0");
        assert_eq!(fmt_si(1234.0), "1.23k");
        assert_eq!(fmt_si(2_500_000.0), "2.50M");
        assert_eq!(fmt_ns(850.0), "850ns");
        assert_eq!(fmt_ns(3_200.0), "3.2µs");
        assert_eq!(fmt_ns(1_400_000.0), "1.4ms");
        assert_eq!(fmt_ns(f64::NAN), "-");
    }

    #[test]
    fn badges_reflect_state() {
        assert_eq!(badge(SloState::Ok, false), "[ OK ]");
        assert_eq!(badge(SloState::Warn, false), "[WARN]");
        assert_eq!(badge(SloState::Breach, false), "[BRCH]");
        assert!(badge(SloState::Breach, true).contains("\x1b[31m"));
    }

    #[test]
    fn frame_renders_live_series_and_omits_empty_stages() {
        let statuses = vec![
            SloStatus {
                name: "forward_p99".into(),
                state: SloState::Ok,
                value: 1.2e6,
                threshold: 5e7,
            },
            SloStatus {
                name: "rejection_budget".into(),
                state: SloState::Breach,
                value: 0.2,
                threshold: 0.05,
            },
        ];
        let f = render_frame(&payload(), &statuses, "127.0.0.1:9000", false);
        assert!(f.contains("throughput"), "{f}");
        assert!(f.contains("180"), "latest rps point: {f}");
        assert!(f.contains("queue depth"), "{f}");
        assert!(f.contains("forward"), "{f}");
        // ingress has count == 0 → omitted from the stage panel.
        assert!(!f.contains("ingress"), "{f}");
        assert!(f.contains("plan-cache 99.0%"), "{f}");
        assert!(f.contains("bound margin"), "{f}");
        assert!(f.contains("[ OK ] forward_p99"), "{f}");
        assert!(f.contains("[BRCH] rejection_budget"), "{f}");
        // Pure render: no ANSI clear codes inside the frame body.
        assert!(!f.contains("\x1b[2J"), "{f}");
    }

    #[test]
    fn empty_payload_renders_without_panicking() {
        let f = render_frame(&ScrapePayload::default(), &[], "x", false);
        assert!(f.contains("throughput"), "{f}");
        assert!(!f.contains("bound margin"), "{f}");
    }

    #[test]
    fn bound_margin_bins_fold_log2_buckets() {
        let h = HistogramDump {
            name: "serve.bound_margin".into(),
            count: 300,
            sum: 0,
            buckets: vec![(14, 200), (18, 100)],
        };
        let lines = render_bound_margin(&h, 10);
        // 2^14·1.5/1e6 ≈ 2.5% → "<10%"; 2^18·1.5/1e6 ≈ 39% → "<50%".
        assert_eq!(lines.len(), 2, "{lines:?}");
        assert!(
            lines[0].contains("<10%") && lines[0].contains("66.7%"),
            "{lines:?}"
        );
        assert!(
            lines[1].contains("<50%") && lines[1].contains("33.3%"),
            "{lines:?}"
        );
        assert!(render_bound_margin(
            &HistogramDump {
                name: "x".into(),
                count: 0,
                sum: 0,
                buckets: vec![]
            },
            10
        )
        .is_empty());
    }
}
