//! `errflow-cli`: train, analyze, plan, and run error-bounded inference
//! pipelines from the command line.  See `errflow::cli` for the parser.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match errflow::cli::parse_args(&args) {
        Ok(cmd) => std::process::exit(errflow::cli::run(cmd)),
        Err(e) => {
            eprintln!("error: {e}\n\n{}", errflow::cli::USAGE);
            std::process::exit(2);
        }
    }
}
