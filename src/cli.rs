//! Command-line interface: train → analyse → plan → run, from the shell.
//!
//! ```sh
//! errflow-cli analyze     --task h2
//! errflow-cli plan        --task borghesi --tol 1e-3 --norm l2 --share 0.5
//! errflow-cli run         --task h2 --tol 1e-2 --backend sz --share 0.5
//! errflow-cli serve-bench --clients 4 --requests 200 --tol 1e-2
//! ```
//!
//! Argument parsing is hand-rolled (no extra dependencies); [`parse_args`]
//! is pure and unit-tested, [`run`] executes a parsed command.

use crate::compress::{Compressor, MgardCompressor, SzCompressor, ZfpCompressor};
use crate::core::NetworkAnalysis;
use crate::net::{run_net_loadgen, NetConfig, NetServer};
use crate::nn::Model;
use crate::pipeline::planner::PayloadLayout;
use crate::pipeline::{Planner, PlannerConfig};
use crate::quant::QuantFormat;
use crate::scidata::task::TrainingMode;
use crate::scidata::{SyntheticTask, TaskKind};
use crate::serve::{run_loadgen, BackendKind, LoadgenConfig, ServeConfig, Server};
use crate::tensor::norms::Norm;

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Train a model and print its spectral analysis and bounds.
    Analyze {
        /// Workload.
        task: TaskKind,
        /// Training mode.
        mode: TrainingMode,
        /// Training epochs.
        epochs: usize,
        /// RNG seed.
        seed: u64,
    },
    /// Print the tolerance-allocation plan for a configuration.
    Plan {
        /// Workload.
        task: TaskKind,
        /// Relative QoI tolerance.
        tol: f64,
        /// Tolerance norm.
        norm: Norm,
        /// Quantization share of the tolerance.
        share: f64,
        /// Use calibrated-magnitude bounds.
        calibrated: bool,
        /// RNG seed.
        seed: u64,
    },
    /// Plan and execute the pipeline on generated data.
    Run {
        /// Workload.
        task: TaskKind,
        /// Relative QoI tolerance.
        tol: f64,
        /// Tolerance norm.
        norm: Norm,
        /// Quantization share.
        share: f64,
        /// Compression backend name.
        backend: String,
        /// RNG seed.
        seed: u64,
    },
    /// Drive the inference server with synthetic closed-loop load and
    /// print a JSON summary.
    ServeBench {
        /// Workload.
        task: TaskKind,
        /// Relative QoI tolerance every client requests.
        tol: f64,
        /// Tolerance norm.
        norm: Norm,
        /// Quantization share of the tolerance.
        share: f64,
        /// Compression backend name.
        backend: String,
        /// Concurrent client threads.
        clients: usize,
        /// Requests per client.
        requests: usize,
        /// Server worker threads.
        workers: usize,
        /// Bounded-queue capacity (admission control limit).
        queue_cap: usize,
        /// Maximum jobs per batched forward pass.
        batch: usize,
        /// Samples per request payload.
        samples: usize,
        /// Distinct tolerance buckets cycled by clients (1 = steady SLO).
        mix: usize,
        /// RNG seed.
        seed: u64,
        /// Smoke mode: shrink the run and fail unless the per-stage
        /// breakdown recorded observations (CI's obs health check).
        smoke: bool,
        /// Write a chrome://tracing trace-event JSON of the run here.
        trace_out: Option<String>,
        /// Drive the load through the wire-protocol TCP frontend instead
        /// of in-process submission.
        net: bool,
        /// Port the net frontend binds (0 = ephemeral; loopback only).
        port: u16,
        /// Dedicated io (acceptor/reader) threads for the net frontend.
        io_threads: usize,
        /// Keep the net frontend (and telemetry plane) alive this many
        /// seconds after the load completes, so external scrapers can
        /// attach (requires --net).
        hold_secs: u64,
    },
    /// One-shot telemetry scrape of a running server over EFNP.
    Scrape {
        /// Server address (`host:port`).
        addr: String,
        /// Output format: Prometheus text or JSON.
        prom: bool,
        /// Retention tier to dump (JSON only; None = all tiers).
        tier: Option<u8>,
        /// Max points per series.
        window: u32,
        /// Run the Prometheus exposition-conformance checker on the
        /// scraped text and fail on violations (requires --prom).
        validate: bool,
        /// Connection/retry budget in seconds.
        timeout_secs: u64,
    },
    /// Live terminal dashboard over a running server's telemetry plane.
    Top {
        /// Server address (`host:port`).
        addr: String,
        /// Milliseconds between frames.
        interval_ms: u64,
        /// Render N frames then exit (None = until interrupted).
        frames: Option<u64>,
    },
    /// Print usage.
    Help,
}

/// Parses CLI arguments (excluding the program name).
pub fn parse_args(args: &[String]) -> Result<Command, String> {
    let mut it = args.iter();
    let cmd = match it.next().map(String::as_str) {
        None | Some("help") | Some("--help") | Some("-h") => return Ok(Command::Help),
        Some(c) => c,
    };
    let mut task = TaskKind::H2Combustion;
    let mut mode = TrainingMode::Psn;
    let mut epochs = 10usize;
    let mut seed = 7u64;
    let mut tol = 1e-3f64;
    let mut norm = Norm::LInf;
    let mut share = 0.5f64;
    let mut calibrated = false;
    let mut backend = "sz".to_string();
    let mut clients = 4usize;
    let mut requests = 200usize;
    let mut workers = 4usize;
    let mut queue_cap = 64usize;
    let mut batch = 16usize;
    let mut samples = 64usize;
    let mut mix = 1usize;
    let mut smoke = false;
    let mut trace_out: Option<String> = None;
    let mut net = false;
    let mut port = 0u16;
    let mut io_threads = 1usize;
    let mut hold_secs = 0u64;
    let mut addr = "127.0.0.1:9090".to_string();
    let mut prom = false;
    let mut json = false;
    let mut tier: Option<u8> = None;
    let mut window = 300u32;
    let mut validate = false;
    let mut timeout_secs = 10u64;
    let mut interval_ms = 1000u64;
    let mut frames: Option<u64> = None;
    // serve-bench defaults to a loose tolerance; `plan`/`run` keep 1e-3.
    let serve_bench = cmd == "serve-bench";
    if serve_bench {
        tol = 1e-2;
        norm = Norm::L2;
    }

    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match flag.as_str() {
            "--task" => {
                task = match value("--task")?.as_str() {
                    "h2" | "h2_combustion" => TaskKind::H2Combustion,
                    "borghesi" | "borghesi_flame" => TaskKind::BorghesiFlame,
                    "eurosat" => TaskKind::EuroSat,
                    other => return Err(format!("unknown task: {other}")),
                }
            }
            "--mode" => {
                mode = match value("--mode")?.as_str() {
                    "psn" => TrainingMode::Psn,
                    "plain" => TrainingMode::Plain,
                    "wd" | "weight_decay" => TrainingMode::WeightDecay,
                    other => return Err(format!("unknown mode: {other}")),
                }
            }
            "--epochs" => {
                epochs = value("--epochs")?
                    .parse()
                    .map_err(|e| format!("--epochs: {e}"))?
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--tol" => tol = value("--tol")?.parse().map_err(|e| format!("--tol: {e}"))?,
            "--norm" => {
                norm = match value("--norm")?.as_str() {
                    "linf" | "l-inf" | "inf" => Norm::LInf,
                    "l2" => Norm::L2,
                    other => return Err(format!("unknown norm: {other}")),
                }
            }
            "--share" => {
                share = value("--share")?
                    .parse()
                    .map_err(|e| format!("--share: {e}"))?
            }
            "--calibrated" => calibrated = true,
            "--backend" => backend = value("--backend")?.clone(),
            "--clients" => {
                clients = value("--clients")?
                    .parse()
                    .map_err(|e| format!("--clients: {e}"))?
            }
            "--requests" => {
                requests = value("--requests")?
                    .parse()
                    .map_err(|e| format!("--requests: {e}"))?
            }
            "--workers" => {
                workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-cap" => {
                queue_cap = value("--queue-cap")?
                    .parse()
                    .map_err(|e| format!("--queue-cap: {e}"))?
            }
            "--batch" => {
                batch = value("--batch")?
                    .parse()
                    .map_err(|e| format!("--batch: {e}"))?
            }
            "--samples" => {
                samples = value("--samples")?
                    .parse()
                    .map_err(|e| format!("--samples: {e}"))?
            }
            "--mix" => mix = value("--mix")?.parse().map_err(|e| format!("--mix: {e}"))?,
            "--smoke" => smoke = true,
            "--trace-out" => trace_out = Some(value("--trace-out")?.clone()),
            "--net" => net = true,
            "--port" => {
                port = value("--port")?
                    .parse()
                    .map_err(|e| format!("--port: {e}"))?
            }
            "--io-threads" => {
                io_threads = value("--io-threads")?
                    .parse()
                    .map_err(|e| format!("--io-threads: {e}"))?
            }
            "--hold-secs" => {
                hold_secs = value("--hold-secs")?
                    .parse()
                    .map_err(|e| format!("--hold-secs: {e}"))?
            }
            "--addr" => addr = value("--addr")?.clone(),
            "--prom" => prom = true,
            "--json" => json = true,
            "--tier" => {
                tier = Some(
                    value("--tier")?
                        .parse()
                        .map_err(|e| format!("--tier: {e}"))?,
                )
            }
            "--window" => {
                window = value("--window")?
                    .parse()
                    .map_err(|e| format!("--window: {e}"))?
            }
            "--validate" => validate = true,
            "--timeout-secs" => {
                timeout_secs = value("--timeout-secs")?
                    .parse()
                    .map_err(|e| format!("--timeout-secs: {e}"))?
            }
            "--interval-ms" => {
                interval_ms = value("--interval-ms")?
                    .parse()
                    .map_err(|e| format!("--interval-ms: {e}"))?
            }
            "--frames" => {
                frames = Some(
                    value("--frames")?
                        .parse()
                        .map_err(|e| format!("--frames: {e}"))?,
                )
            }
            other => return Err(format!("unknown flag: {other}")),
        }
    }
    match cmd {
        "analyze" => Ok(Command::Analyze {
            task,
            mode,
            epochs,
            seed,
        }),
        "plan" => Ok(Command::Plan {
            task,
            tol,
            norm,
            share,
            calibrated,
            seed,
        }),
        "run" => Ok(Command::Run {
            task,
            tol,
            norm,
            share,
            backend,
            seed,
        }),
        "serve-bench" => Ok(Command::ServeBench {
            task,
            tol,
            norm,
            share,
            backend,
            clients,
            requests,
            workers,
            queue_cap,
            batch,
            samples,
            mix,
            seed,
            smoke,
            trace_out,
            net,
            port,
            io_threads,
            hold_secs,
        }),
        "scrape" => {
            if prom && json {
                return Err("--prom and --json are mutually exclusive".to_string());
            }
            if validate && json {
                return Err("--validate requires --prom".to_string());
            }
            Ok(Command::Scrape {
                addr,
                prom: !json,
                tier,
                window,
                validate,
                timeout_secs,
            })
        }
        "top" => Ok(Command::Top {
            addr,
            interval_ms,
            frames,
        }),
        other => Err(format!("unknown command: {other}")),
    }
}

/// Usage text.
pub const USAGE: &str = "\
errflow-cli — error-controlled scientific inference

USAGE:
  errflow-cli analyze --task <h2|borghesi|eurosat> [--mode psn|plain|wd] [--epochs N] [--seed N]
  errflow-cli plan    --task <...> --tol <rel> [--norm linf|l2] [--share F] [--calibrated] [--seed N]
  errflow-cli run     --task <...> --tol <rel> --backend <sz|zfp|mgard> [--norm linf|l2] [--share F] [--seed N]
  errflow-cli serve-bench [--task <...>] [--tol <rel>] [--norm linf|l2] [--share F] [--backend <...>]
                          [--clients N] [--requests M] [--workers N] [--queue-cap N] [--batch N]
                          [--samples N] [--mix K] [--seed N] [--smoke] [--trace-out FILE]
                          [--net] [--port P] [--io-threads N] [--hold-secs S]
  errflow-cli scrape  [--addr HOST:PORT] [--prom|--json] [--tier N] [--window N] [--validate]
                      [--timeout-secs S]
  errflow-cli top     [--addr HOST:PORT] [--interval-ms N] [--frames N]
  errflow-cli help

serve-bench drives the in-process inference server with N closed-loop
clients submitting M requests each and prints a JSON summary (throughput,
latency percentiles, per-stage breakdown, plan-cache hit rate,
certified-bound check).  --smoke shrinks the run and fails unless the
stage breakdown recorded observations and throughput clears the 25 req/s
floor; --trace-out writes a
chrome://tracing trace-event JSON of the run (load it at chrome://tracing
or https://ui.perfetto.dev).  --net routes the load through the
wire-protocol TCP frontend on 127.0.0.1 (--port, 0 = ephemeral;
--io-threads acceptor/reader threads) and adds client RTT plus frontend
overhead to the summary; with --smoke it also fails if the ingress/egress
stages are empty or the p50 frontend overhead exceeds 250µs.
--hold-secs keeps the --net frontend and the telemetry plane alive after
the load finishes so scrape/top can attach.

scrape performs one EFNP metrics request against a live server started
with --net: --prom (default) prints Prometheus text (--validate runs the
exposition-conformance checker on it), --json prints the tiered
time-series plus SLO states as JSON (--tier selects one retention tier,
--window caps points per series).

top renders a live terminal dashboard (throughput, per-stage latency
sparklines, cache hit rates, bound-margin distribution, SLO badges)
refreshed every --interval-ms; --frames N exits after N frames.
";

fn backend_by_name(name: &str) -> Result<Box<dyn Compressor>, String> {
    match name {
        "sz" => Ok(Box::new(SzCompressor::default())),
        "zfp" => Ok(Box::new(ZfpCompressor::default())),
        "mgard" => Ok(Box::new(MgardCompressor)),
        other => Err(format!("unknown backend: {other}")),
    }
}

/// Executes a parsed command, returning the process exit code.
pub fn run(cmd: Command) -> i32 {
    match cmd {
        Command::Help => {
            println!("{USAGE}");
            0
        }
        Command::Analyze {
            task,
            mode,
            epochs,
            seed,
        } => {
            let t = SyntheticTask::of_kind_small(task, seed);
            println!("training {} ({:?}, {epochs} epochs)...", task.name(), mode);
            let model = t.trained_model(mode, epochs);
            let a = NetworkAnalysis::of(&model);
            println!("parameters: {}", model.num_params());
            println!("FLOPs/sample: {:.3e}", model.flops());
            println!("layer spectral norms: {:?}", a.sigmas());
            println!("amplification (Ineq. 5 factor): {:.4}", a.amplification());
            for f in QuantFormat::REDUCED {
                println!(
                    "quantization bound [{}]: {:.4e}",
                    f.label(),
                    a.quantization_bound(f)
                );
            }
            0
        }
        Command::Plan {
            task,
            tol,
            norm,
            share,
            calibrated,
            seed,
        } => {
            let t = SyntheticTask::of_kind_small(task, seed);
            let model = t.trained_model(TrainingMode::Psn, 10);
            let cal: Vec<Vec<f32>> = t.ordered_inputs().iter().take(64).cloned().collect();
            let planner = if calibrated {
                Planner::new_calibrated(&model, &cal, 1.5)
            } else {
                Planner::new(&model, &cal)
            };
            let plan = planner.plan(&PlannerConfig {
                rel_tolerance: tol,
                norm,
                quant_share: share,
            });
            println!("task:                 {}", task.name());
            println!("tolerance:            {tol:.3e} ({norm}, relative)");
            println!("chosen format:        {}", plan.format);
            println!("quantization bound:   {:.4e}", plan.predicted_quant_bound);
            println!("compression budget:   {:.4e}", plan.compression_budget);
            println!("input ‖Δx‖₂ budget:   {:.4e}", plan.input_budget_l2);
            println!("total bound:          {:.4e}", plan.predicted_total_bound);
            0
        }
        Command::Run {
            task,
            tol,
            norm,
            share,
            backend,
            seed,
        } => {
            let be = match backend_by_name(&backend) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            let t = SyntheticTask::of_kind_small(task, seed);
            let model = t.trained_model(TrainingMode::Psn, 10);
            let cal: Vec<Vec<f32>> = t.ordered_inputs().iter().take(64).cloned().collect();
            let planner = Planner::new_calibrated(&model, &cal, 1.5);
            let plan = planner.plan(&PlannerConfig {
                rel_tolerance: tol,
                norm,
                quant_share: share,
            });
            let layout = match task {
                TaskKind::EuroSat => PayloadLayout::SampleMajor,
                _ => PayloadLayout::FeatureMajor,
            };
            let inputs: Vec<Vec<f32>> = t.ordered_inputs().iter().take(256).cloned().collect();
            match planner.execute(&plan, be.as_ref(), &inputs, norm, layout) {
                Ok(report) => {
                    println!("format:          {}", plan.format);
                    println!("compression:     {:.1}x", report.stats.ratio());
                    println!("predicted bound: {:.4e}", report.predicted_rel_bound);
                    println!("achieved (max):  {:.4e}", report.achieved_rel_error.max);
                    println!(
                        "achieved (geo):  {:.4e}",
                        report.achieved_rel_error.geo_mean
                    );
                    println!("I/O throughput:  {:.3} GB/s", report.io_gbps);
                    println!("exec throughput: {:.3} GB/s", report.exec_gbps);
                    println!("end-to-end:      {:.3} GB/s", report.end_to_end_gbps);
                    let ok = report.achieved_rel_error.max <= report.predicted_rel_bound;
                    println!("bound held:      {ok}");
                    i32::from(!ok)
                }
                Err(e) => {
                    eprintln!("pipeline failed: {e}");
                    2
                }
            }
        }
        Command::ServeBench {
            task,
            tol,
            norm,
            share,
            backend,
            clients,
            requests,
            workers,
            queue_cap,
            batch,
            samples,
            mix,
            seed,
            smoke,
            trace_out,
            net,
            port,
            io_threads,
            hold_secs,
        } => {
            if hold_secs > 0 && !net {
                eprintln!("--hold-secs requires --net (nothing to scrape in-process)");
                return 2;
            }
            let backend = match BackendKind::parse(&backend) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("{e}");
                    return 2;
                }
            };
            if clients == 0 || requests == 0 || workers == 0 || mix == 0 {
                eprintln!("--clients, --requests, --workers, and --mix must be positive");
                return 2;
            }
            // Smoke mode: a fast run that still exercises every stage.
            let (clients, requests, samples) = if smoke {
                (clients.min(2), requests.min(8), samples.min(16))
            } else {
                (clients, requests, samples)
            };
            let t = SyntheticTask::of_kind_small(task, seed);
            eprintln!(
                "serve-bench: training {} model, then {clients} clients x {requests} requests{}...",
                task.name(),
                if net { " over TCP" } else { "" }
            );
            let model = t.trained_model(TrainingMode::Psn, 6);
            let cal: Vec<Vec<f32>> = t.ordered_inputs().iter().take(64).cloned().collect();
            let server = std::sync::Arc::new(Server::new(
                model,
                cal,
                ServeConfig {
                    workers,
                    queue_capacity: queue_cap,
                    max_batch: batch,
                    quant_share: share,
                    backend,
                    ..ServeConfig::default()
                },
            ));
            // `--mix K` spreads requests over K log-spaced tolerance
            // buckets at and below `--tol` to exercise plan-cache churn;
            // the default K=1 is the steady single-SLO workload.
            let tolerances: Vec<f64> = (0..mix).map(|i| tol * 10f64.powi(-(i as i32))).collect();
            let lg_cfg = LoadgenConfig {
                clients,
                requests_per_client: requests,
                samples_per_request: samples,
                tolerances,
                norm,
                layout: match task {
                    TaskKind::EuroSat => PayloadLayout::SampleMajor,
                    _ => PayloadLayout::FeatureMajor,
                },
                seed,
            };
            // The telemetry pump feeds the live observability plane
            // (tiered time series + SLOs) that `scrape`/`top` read; it
            // runs for the whole bench including any --hold-secs window.
            let _telemetry = crate::serve::start_telemetry(
                server.stats_source(),
                crate::serve::TelemetryConfig::default(),
            );
            // In net mode the closed loop runs through real sockets and the
            // summary grows a `net` block (client RTT + frontend overhead).
            let (summary, net_overhead_us) = if net {
                let frontend = match NetServer::start(
                    std::sync::Arc::clone(&server),
                    &format!("127.0.0.1:{port}"),
                    NetConfig {
                        io_threads,
                        ..NetConfig::default()
                    },
                ) {
                    Ok(f) => f,
                    Err(e) => {
                        eprintln!("failed to start net frontend: {e}");
                        return 2;
                    }
                };
                eprintln!("net frontend listening on {}", frontend.local_addr());
                let s = run_net_loadgen(&server, frontend.local_addr(), &lg_cfg);
                println!("{}", s.to_json());
                if hold_secs > 0 {
                    eprintln!(
                        "holding frontend open on {} for {hold_secs}s (scrape/top may attach)...",
                        frontend.local_addr()
                    );
                    std::thread::sleep(std::time::Duration::from_secs(hold_secs));
                }
                (s.base, Some(s.overhead_p50_us))
            } else {
                let s = run_loadgen(&server, &lg_cfg);
                println!("{}", s.to_json());
                (s, None)
            };
            if let Some(path) = trace_out {
                let trace = crate::obs::trace::export_chrome_trace();
                match std::fs::write(&path, trace) {
                    Ok(()) => eprintln!("trace written to {path}"),
                    Err(e) => {
                        eprintln!("failed to write trace to {path}: {e}");
                        return 2;
                    }
                }
            }
            if smoke {
                // CI health check: the observability surface must have seen
                // the run — every stage histogram populated and every
                // completed response bound-certified.
                let s = &summary.stages;
                let stages_ok = s.batch_wait.count > 0
                    && s.plan.count > 0
                    && s.decompress.count > 0
                    && s.forward.count > 0
                    && s.respond.count > 0;
                let bounds_ok = summary.bound_pass > 0 && summary.bound_fail == 0;
                // Throughput floor: the smoke workload (tiny payloads, warm
                // plan cache) sustains thousands of req/s locally; 25 req/s
                // only trips when the serve hot path regresses catastrophically
                // (e.g. the fused decode or prepacked forward re-growing a
                // per-request allocation storm), not on a loaded CI box.
                let throughput_ok = summary.throughput_rps >= 25.0;
                eprintln!(
                    "smoke: throughput = {:.1} req/s (floor 25)",
                    summary.throughput_rps
                );
                // Net mode additionally gates on the frontend itself: the
                // ingress/egress stages must be populated and the p50
                // overhead over in-process dispatch must stay under the CI
                // budget (the local target is ~100µs; CI machines are
                // noisy, so the gate is 250µs).
                let net_ok = match net_overhead_us {
                    None => true,
                    Some(overhead) => {
                        let frontend_stages_ok = s.ingress.count > 0 && s.egress.count > 0;
                        eprintln!(
                            "smoke: net frontend stages populated = {frontend_stages_ok}, \
                             p50 overhead = {overhead:.1}us (budget 250us)"
                        );
                        frontend_stages_ok && overhead.is_finite() && overhead <= 250.0
                    }
                };
                eprintln!(
                    "smoke: stage breakdown populated = {stages_ok}, \
                     bound certification counters ok = {bounds_ok}"
                );
                if !(stages_ok && bounds_ok && net_ok && throughput_ok) {
                    return 3;
                }
            }
            i32::from(!summary.all_bounds_certified)
        }
        Command::Scrape {
            addr,
            prom,
            tier,
            window,
            validate,
            timeout_secs,
        } => {
            use crate::net::proto::TIER_ALL;
            use crate::net::{MetricsFormat, MetricsResponseFrame, NetClient};
            let deadline =
                std::time::Instant::now() + std::time::Duration::from_secs(timeout_secs.max(1));
            // Retry the connect until the deadline: CI starts the server
            // and the scraper concurrently.
            let mut client = loop {
                match NetClient::connect(&addr) {
                    Ok(c) => break c,
                    Err(e) => {
                        if std::time::Instant::now() >= deadline {
                            eprintln!("connect {addr}: {e}");
                            return 2;
                        }
                        std::thread::sleep(std::time::Duration::from_millis(100));
                    }
                }
            };
            if let Err(e) = client.set_read_timeout(Some(std::time::Duration::from_secs(10))) {
                eprintln!("set timeout: {e}");
                return 2;
            }
            let format = if prom {
                MetricsFormat::Prometheus
            } else {
                MetricsFormat::Json
            };
            let body = match client.scrape(format, tier.unwrap_or(TIER_ALL), window) {
                Ok(MetricsResponseFrame::Text { body, .. }) => body,
                Ok(MetricsResponseFrame::Binary(_)) => {
                    eprintln!("server sent a binary response to a text scrape");
                    return 2;
                }
                Err(e) => {
                    eprintln!("scrape {addr}: {e}");
                    return 2;
                }
            };
            println!("{body}");
            if validate {
                let violations = crate::obs::promcheck::validate(&body);
                if violations.is_empty() {
                    eprintln!("exposition conformance: ok");
                } else {
                    for v in &violations {
                        eprintln!("exposition violation: {v}");
                    }
                    return 3;
                }
            }
            0
        }
        Command::Top {
            addr,
            interval_ms,
            frames,
        } => match crate::top::run_top(&crate::top::TopConfig {
            addr,
            interval_ms,
            frames,
        }) {
            Ok(()) => 0,
            Err(e) => {
                eprintln!("{e}");
                2
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_help_variants() {
        assert_eq!(parse_args(&[]).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("help")).unwrap(), Command::Help);
        assert_eq!(parse_args(&args("--help")).unwrap(), Command::Help);
    }

    #[test]
    fn parse_analyze_defaults() {
        let c = parse_args(&args("analyze --task h2")).unwrap();
        assert_eq!(
            c,
            Command::Analyze {
                task: TaskKind::H2Combustion,
                mode: TrainingMode::Psn,
                epochs: 10,
                seed: 7
            }
        );
    }

    #[test]
    fn parse_plan_full() {
        let c = parse_args(&args(
            "plan --task borghesi --tol 1e-4 --norm l2 --share 0.7 --calibrated --seed 11",
        ))
        .unwrap();
        match c {
            Command::Plan {
                task,
                tol,
                norm,
                share,
                calibrated,
                seed,
            } => {
                assert_eq!(task, TaskKind::BorghesiFlame);
                assert_eq!(tol, 1e-4);
                assert_eq!(norm, Norm::L2);
                assert_eq!(share, 0.7);
                assert!(calibrated);
                assert_eq!(seed, 11);
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_run_backend() {
        let c = parse_args(&args("run --task eurosat --tol 1e-2 --backend mgard")).unwrap();
        match c {
            Command::Run { task, backend, .. } => {
                assert_eq!(task, TaskKind::EuroSat);
                assert_eq!(backend, "mgard");
            }
            _ => panic!("wrong command"),
        }
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&args("frobnicate")).is_err());
        assert!(parse_args(&args("plan --task mars")).is_err());
        assert!(parse_args(&args("plan --tol nope")).is_err());
        assert!(parse_args(&args("plan --tol")).is_err());
        assert!(parse_args(&args("run --norm l3")).is_err());
    }

    #[test]
    fn parse_serve_bench_defaults_and_overrides() {
        let c = parse_args(&args("serve-bench")).unwrap();
        match c {
            Command::ServeBench {
                task,
                tol,
                norm,
                clients,
                requests,
                workers,
                queue_cap,
                batch,
                samples,
                mix,
                ..
            } => {
                assert_eq!(task, TaskKind::H2Combustion);
                assert_eq!(tol, 1e-2);
                assert_eq!(norm, Norm::L2);
                assert_eq!((clients, requests), (4, 200));
                assert_eq!((workers, queue_cap, batch), (4, 64, 16));
                assert_eq!((samples, mix), (64, 1));
            }
            _ => panic!("wrong command"),
        }
        let c = parse_args(&args(
            "serve-bench --task borghesi --tol 1e-3 --clients 8 --requests 50 \
             --workers 2 --queue-cap 16 --batch 4 --samples 32 --mix 3 --backend zfp",
        ))
        .unwrap();
        match c {
            Command::ServeBench {
                task,
                tol,
                clients,
                requests,
                workers,
                queue_cap,
                batch,
                samples,
                mix,
                backend,
                ..
            } => {
                assert_eq!(task, TaskKind::BorghesiFlame);
                assert_eq!(tol, 1e-3);
                assert_eq!((clients, requests), (8, 50));
                assert_eq!((workers, queue_cap, batch), (2, 16, 4));
                assert_eq!((samples, mix), (32, 3));
                assert_eq!(backend, "zfp");
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&args("serve-bench --clients nope")).is_err());
    }

    #[test]
    fn parse_serve_bench_obs_flags() {
        let c = parse_args(&args("serve-bench --smoke --trace-out /tmp/trace.json")).unwrap();
        match c {
            Command::ServeBench {
                smoke, trace_out, ..
            } => {
                assert!(smoke);
                assert_eq!(trace_out.as_deref(), Some("/tmp/trace.json"));
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&args("serve-bench")).unwrap() {
            Command::ServeBench {
                smoke, trace_out, ..
            } => {
                assert!(!smoke);
                assert_eq!(trace_out, None);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&args("serve-bench --trace-out")).is_err());
    }

    #[test]
    fn parse_serve_bench_net_flags() {
        match parse_args(&args("serve-bench --net --port 9000 --io-threads 2")).unwrap() {
            Command::ServeBench {
                net,
                port,
                io_threads,
                ..
            } => {
                assert!(net);
                assert_eq!(port, 9000);
                assert_eq!(io_threads, 2);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&args("serve-bench")).unwrap() {
            Command::ServeBench {
                net,
                port,
                io_threads,
                ..
            } => {
                assert!(!net);
                assert_eq!(port, 0);
                assert_eq!(io_threads, 1);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&args("serve-bench --port many")).is_err());
        assert!(parse_args(&args("serve-bench --io-threads")).is_err());
    }

    #[test]
    fn parse_serve_bench_hold_secs() {
        match parse_args(&args("serve-bench --net --hold-secs 30")).unwrap() {
            Command::ServeBench { hold_secs, net, .. } => {
                assert_eq!(hold_secs, 30);
                assert!(net);
            }
            _ => panic!("wrong command"),
        }
        match parse_args(&args("serve-bench")).unwrap() {
            Command::ServeBench { hold_secs, .. } => assert_eq!(hold_secs, 0),
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&args("serve-bench --hold-secs soon")).is_err());
    }

    #[test]
    fn parse_scrape() {
        assert_eq!(
            parse_args(&args("scrape")).unwrap(),
            Command::Scrape {
                addr: "127.0.0.1:9090".into(),
                prom: true,
                tier: None,
                window: 300,
                validate: false,
                timeout_secs: 10,
            }
        );
        assert_eq!(
            parse_args(&args(
                "scrape --addr 127.0.0.1:9001 --json --tier 1 --window 64 --timeout-secs 3"
            ))
            .unwrap(),
            Command::Scrape {
                addr: "127.0.0.1:9001".into(),
                prom: false,
                tier: Some(1),
                window: 64,
                validate: false,
                timeout_secs: 3,
            }
        );
        match parse_args(&args("scrape --prom --validate")).unwrap() {
            Command::Scrape { prom, validate, .. } => {
                assert!(prom && validate);
            }
            _ => panic!("wrong command"),
        }
        assert!(parse_args(&args("scrape --prom --json")).is_err());
        assert!(parse_args(&args("scrape --json --validate")).is_err());
        assert!(parse_args(&args("scrape --tier many")).is_err());
    }

    #[test]
    fn parse_top() {
        assert_eq!(
            parse_args(&args("top")).unwrap(),
            Command::Top {
                addr: "127.0.0.1:9090".into(),
                interval_ms: 1000,
                frames: None,
            }
        );
        assert_eq!(
            parse_args(&args(
                "top --addr 127.0.0.1:9002 --interval-ms 250 --frames 5"
            ))
            .unwrap(),
            Command::Top {
                addr: "127.0.0.1:9002".into(),
                interval_ms: 250,
                frames: Some(5),
            }
        );
        assert!(parse_args(&args("top --frames")).is_err());
    }

    #[test]
    fn backend_lookup() {
        assert!(backend_by_name("sz").is_ok());
        assert!(backend_by_name("zfp").is_ok());
        assert!(backend_by_name("mgard").is_ok());
        assert!(backend_by_name("gzip").is_err());
    }
}
