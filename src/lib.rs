//! # errflow
//!
//! Error-controlled neural-network inference for scientific data analysis.
//!
//! This is the facade crate of the `errflow` workspace — a from-scratch Rust
//! implementation of *Understanding and Estimating Error Propagation in
//! Neural Networks for Scientific Data Analysis* (ICDE 2025).  It re-exports
//! the public API of every sub-crate so downstream users can depend on a
//! single crate:
//!
//! ```
//! use errflow::prelude::*;
//!
//! // Train a tiny PSN-regularised MLP and predict its output error bound
//! // under FP16 weight quantization + lossy input compression.
//! let task = SyntheticTask::h2_combustion_small(42);
//! let model = task.train_quick();
//! let analysis = NetworkAnalysis::of(&model);
//! let bound = analysis.combined_bound(1e-4, QuantFormat::Fp16);
//! assert!(bound.total() > 0.0);
//! ```
//!
//! ## Crate map
//!
//! | Crate | Contents |
//! |---|---|
//! | [`tensor`] | matrices, norms, spectral norms (power iteration) |
//! | [`nn`] | MLP/ResNet models, training, parameterized spectral normalization |
//! | [`quant`] | numerical formats, Table-I step sizes, affine quantization |
//! | [`compress`] | SZ-, ZFP-, MGARD-class error-bounded lossy compressors |
//! | [`core`] | the paper's error-flow bounds (Inequalities 3 and 5) |
//! | [`scidata`] | synthetic scientific workload generators |
//! | [`pipeline`] | tolerance allocation and the end-to-end inference pipeline |
//! | [`serve`] | concurrent batched inference server with plan caching |
//! | [`net`] | wire-protocol TCP frontend + client for the server |
//! | [`obs`] | metrics registry, span tracing, latency histograms |

pub mod cli;
pub mod top;

pub use errflow_compress as compress;
pub use errflow_core as core;
pub use errflow_net as net;
pub use errflow_nn as nn;
pub use errflow_obs as obs;
pub use errflow_pipeline as pipeline;
pub use errflow_quant as quant;
pub use errflow_scidata as scidata;
pub use errflow_serve as serve;
pub use errflow_tensor as tensor;

/// One-stop imports for the common workflow: build/train a model, analyse its
/// spectra, predict bounds, and plan a compression+quantization pipeline.
pub mod prelude {
    pub use errflow_compress::{
        Compressor, ErrorBound, MgardCompressor, SzCompressor, ZfpCompressor,
    };
    pub use errflow_core::{BoundBreakdown, NetworkAnalysis};
    pub use errflow_nn::{Activation, Mlp, Model, TrainConfig};
    pub use errflow_pipeline::{PipelinePlan, Planner, PlannerConfig};
    pub use errflow_quant::QuantFormat;
    pub use errflow_scidata::SyntheticTask;
    pub use errflow_serve::{Request, ServeConfig, Server};
    pub use errflow_tensor::norms::Norm;
    pub use errflow_tensor::Matrix;
}
