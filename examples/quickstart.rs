//! Quickstart: train a small scientific surrogate, predict its output
//! error bound under compression + quantization, and verify the bound
//! against a real run.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use errflow::core::ErrorFlow;
use errflow::prelude::*;
use errflow::scidata::task::TrainingMode;

fn main() {
    // 1. Generate a synthetic H2-combustion workload and train the paper's
    //    2×50 Tanh MLP with parameterized spectral normalization.
    let task = SyntheticTask::h2_combustion_small(42);
    println!(
        "workload: {} ({} samples, {} -> {} features)",
        task.kind,
        task.dataset.len(),
        task.input_dim(),
        task.output_dim()
    );
    let model = task.trained_model(TrainingMode::Psn, 12);

    // 2. Analyse the trained network: per-layer spectral norms feed the
    //    error bounds of Ineq. (3).
    let analysis = NetworkAnalysis::of(&model);
    println!("layer spectral norms: {:?}", analysis.sigmas());
    println!(
        "network amplification (Πσ): {:.3}",
        analysis.amplification()
    );

    // 3. Predict the output error bound for FP16 weights + a 1e-4 input
    //    compression error — *before* touching the data.
    let dx = 1e-4;
    let bound = analysis.combined_bound(dx, QuantFormat::Fp16);
    println!(
        "predicted bound at ||dx||={dx}: compression {:.3e} + quantization {:.3e} = {:.3e}",
        bound.compression,
        bound.quantization,
        bound.total()
    );

    // 4. Verify on real data: compress an input with SZ, quantize the
    //    model to FP16, and decompose the observed error along the paper's
    //    two-leg path (Eq. 4).
    let sz = SzCompressor::default();
    let x = task.ordered_inputs()[100].clone();
    let stream = sz
        .compress(&x, &ErrorBound::abs_l2(dx))
        .expect("sz supports L2 bounds");
    let x_tilde = sz.decompress(&stream).expect("roundtrip");
    let quantized = errflow::core::quantize_model(&model, QuantFormat::Fp16);
    let flow = ErrorFlow::decompose(&model, &quantized, &x, &x_tilde);
    println!(
        "observed: compression leg {:.3e}, quantization leg {:.3e}, total {:.3e}",
        flow.compression_error(Norm::L2),
        flow.quantization_error(Norm::L2),
        flow.total_error(Norm::L2)
    );
    assert!(flow.total_error(Norm::L2) <= bound.total());
    println!("bound holds: observed total <= predicted bound");
}
