//! Interactive-style error-budget exploration on the high-sensitivity
//! Borghesi flame workload.
//!
//! Shows how the Fig. 1 framework reacts as the user's QoI tolerance and
//! the quantization share vary: which numerical format unlocks when, how
//! much input-compression budget is left, and where the FP16 "turning
//! point" (§IV-D: tolerance ≈ 1e-3) appears.
//!
//! ```sh
//! cargo run --release --example error_budget_planner
//! ```

use errflow::prelude::*;
use errflow::scidata::task::TrainingMode;

fn main() {
    let task = SyntheticTask::borghesi(11);
    let model = task.trained_model(TrainingMode::Psn, 15);
    let calibration: Vec<Vec<f32>> = task.ordered_inputs().iter().take(64).cloned().collect();
    let planner = Planner::new(&model, &calibration);

    println!(
        "Borghesi flame: dissipation-rate QoI, amplification {:.3}\n",
        planner.analysis().amplification()
    );
    println!(
        "{:>11} | {:>24} | {:>24} | {:>24}",
        "tolerance", "share=0.1", "share=0.5", "share=0.9"
    );
    println!(
        "{:>11} | {:>15} {:>8} | {:>15} {:>8} | {:>15} {:>8}",
        "", "input_budget", "format", "input_budget", "format", "input_budget", "format"
    );
    let mut exp = -6;
    while exp <= 0 {
        let tol = 10f64.powi(exp);
        let mut cells = Vec::new();
        for share in [0.1, 0.5, 0.9] {
            let plan = planner.plan(&PlannerConfig {
                rel_tolerance: tol,
                norm: Norm::L2,
                quant_share: share,
            });
            cells.push(format!(
                "{:>15.3e} {:>8}",
                plan.input_budget_l2,
                plan.format.label()
            ));
        }
        println!("{tol:>11.0e} | {} | {} | {}", cells[0], cells[1], cells[2]);
        exp += 1;
    }

    // The turning point: the first tolerance where FP16 (or better) is
    // admissible with a 50% share.
    let mut turning = None;
    for i in 0..120 {
        let tol = 10f64.powf(-6.0 + i as f64 * 0.05);
        let plan = planner.plan(&PlannerConfig {
            rel_tolerance: tol,
            norm: Norm::L2,
            quant_share: 0.5,
        });
        if plan.format != QuantFormat::Fp32 {
            turning = Some((tol, plan.format));
            break;
        }
    }
    match turning {
        Some((tol, fmt)) => println!(
            "\nquantization turning point (50% share): {} unlocks at tolerance ≈ {tol:.1e}",
            fmt.label()
        ),
        None => println!("\nno reduced format admissible in the swept range"),
    }
}
