//! Tour of the error-bounded compression substrate on a real scientific
//! field: the three paper backends (SZ / ZFP / MGARD), the 2-D Lorenzo SZ
//! variant, and the chunked-parallel wrapper — with ratios, speeds, and
//! verified error bounds.
//!
//! ```sh
//! cargo run --release --example compression_tour
//! ```

use errflow::compress::chunked::ChunkedCompressor;
use errflow::compress::sz2d::Sz2dCompressor;
use errflow::prelude::*;
use errflow::scidata::h2;

fn main() {
    // A 128×128 H2 mass-fraction field: smooth, vortex-centred — the kind
    // of data these compressors were built for.
    let workload = h2::generate(128, 10, 77);
    let field = &workload.species_fields[0];
    println!(
        "field: {}x{} H2 mass fractions ({} KB)\n",
        field.nx,
        field.ny,
        field.data.len() * 4 / 1024
    );

    println!(
        "{:>12} {:>10} {:>9} {:>12} {:>12}",
        "backend", "tolerance", "ratio", "comp MB/s", "decomp MB/s"
    );
    for tol in [1e-2, 1e-4, 1e-6] {
        let bound = ErrorBound::rel_linf(tol);
        for backend in errflow::compress::all_backends() {
            let (recon, stats) = backend.roundtrip(&field.data, &bound).unwrap();
            assert!(bound.verify(&field.data, &recon), "bound violated!");
            println!(
                "{:>12} {:>10.0e} {:>8.1}x {:>12.1} {:>12.1}",
                backend.name(),
                tol,
                stats.ratio(),
                stats.compress_gbps() * 1000.0,
                stats.decompress_gbps() * 1000.0,
            );
        }
        // 2-D Lorenzo SZ sees the grid structure the 1-D backends flatten.
        let sz2d = Sz2dCompressor::new();
        let stream = sz2d
            .compress(&field.data, field.nx, field.ny, &bound)
            .unwrap();
        let (recon, _, _) = sz2d.decompress(&stream).unwrap();
        assert!(bound.verify(&field.data, &recon));
        println!(
            "{:>12} {:>10.0e} {:>8.1}x {:>12} {:>12}",
            "sz2d",
            tol,
            (field.data.len() * 4) as f64 / stream.len() as f64,
            "-",
            "-",
        );
        println!();
    }

    // Chunked-parallel wrapper: same bound contract, multi-core decode.
    let chunked = ChunkedCompressor::new(SzCompressor::default());
    let bound = ErrorBound::rel_linf(1e-4);
    let (recon, stats) = chunked.roundtrip(&field.data, &bound).unwrap();
    assert!(bound.verify(&field.data, &recon));
    println!(
        "chunked-parallel sz @1e-4: {:.1}x ratio across {} cores",
        stats.ratio(),
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    );
}
