//! EuroSAT-style multispectral classification with an error-bounded
//! feature-map QoI.
//!
//! The paper treats the ResNet's final feature map as the quantity of
//! interest for the satellite task ("essential not only for classification
//! but also for downstream tasks").  This example trains the compact
//! ResNet, quantizes it per format, and shows (a) the feature-map error
//! bound vs the achieved error and (b) the effect on classification
//! accuracy.
//!
//! ```sh
//! cargo run --release --example satellite_classification
//! ```

use errflow::nn::loss::argmax;
use errflow::prelude::*;
use errflow::scidata::task::TrainingMode;
use errflow::tensor::norms::diff_norm;

fn main() {
    let task = SyntheticTask::eurosat(3);
    let model = task.trained_model(TrainingMode::Psn, 6);

    // Training-set accuracy of the full-precision model.
    let accuracy = |m: &errflow::scidata::TaskModel| -> f64 {
        let correct = task
            .dataset
            .inputs
            .iter()
            .zip(&task.dataset.targets)
            .filter(|(x, t)| argmax(&m.forward(x)) == argmax(t))
            .count();
        correct as f64 / task.dataset.len() as f64
    };
    let base_acc = accuracy(&model);
    println!("full-precision accuracy: {:.1}%", 100.0 * base_acc);

    let analysis = NetworkAnalysis::of(&model);
    println!(
        "network amplification {:.3}, blocks: {}",
        analysis.amplification(),
        analysis.blocks().len()
    );

    println!(
        "\n{:>7} {:>14} {:>14} {:>10}",
        "format", "pred_bound", "achieved_max", "accuracy"
    );
    for format in QuantFormat::REDUCED {
        let qm = errflow::core::quantize_model(&model, format);
        let bound = analysis.quantization_bound(format);
        let mut achieved = 0.0f64;
        for x in task.ordered_inputs().iter().take(100) {
            let y = model.forward(x);
            let yq = qm.forward(x);
            achieved = achieved.max(diff_norm(&y, &yq, Norm::L2));
        }
        assert!(achieved <= bound, "{format}: bound violated");
        println!(
            "{:>7} {:>14.3e} {:>14.3e} {:>9.1}%",
            format.label(),
            bound,
            achieved,
            100.0 * accuracy(&qm)
        );
    }
    println!("\nfeature-map error bounds hold for every format");
}
