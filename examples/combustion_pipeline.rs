//! End-to-end error-bounded inference pipeline on the turbulent hydrogen
//! combustion workload (the paper's Fig. 1 framework, §IV-D).
//!
//! Given a user tolerance on the reaction-rate QoI, the planner splits it
//! between weight quantization and input compression, picks the fastest
//! admissible numerical format, and runs the pipeline — reporting the
//! throughput of each phase and verifying the achieved error against the
//! predicted bound.
//!
//! ```sh
//! cargo run --release --example combustion_pipeline
//! ```

use errflow::pipeline::planner::PayloadLayout;
use errflow::prelude::*;
use errflow::scidata::task::TrainingMode;

fn main() {
    let task = SyntheticTask::h2_combustion(7);
    let model = task.trained_model(TrainingMode::Psn, 15);
    let calibration: Vec<Vec<f32>> = task.ordered_inputs().iter().take(64).cloned().collect();
    let planner = Planner::new(&model, &calibration);

    let inputs: Vec<Vec<f32>> = task.ordered_inputs().iter().take(1024).cloned().collect();
    let backends: Vec<Box<dyn Compressor>> = vec![
        Box::new(ZfpCompressor::default()),
        Box::new(SzCompressor::default()),
        Box::new(MgardCompressor::default()),
    ];

    println!("tolerance sweep on the H2 reaction-rate QoI (L-infinity, quant share 50%):\n");
    println!(
        "{:>10} {:>8} {:>7} {:>12} {:>12} {:>9} {:>9} {:>9}",
        "tolerance",
        "backend",
        "format",
        "pred_bound",
        "achieved",
        "io_GB/s",
        "ex_GB/s",
        "e2e_GB/s"
    );
    for tol in [1e-4, 1e-3, 1e-2] {
        for backend in &backends {
            let cfg = PlannerConfig {
                rel_tolerance: tol,
                norm: Norm::LInf,
                quant_share: 0.5,
            };
            let plan = planner.plan(&cfg);
            let report = planner
                .execute(
                    &plan,
                    backend.as_ref(),
                    &inputs,
                    Norm::LInf,
                    PayloadLayout::FeatureMajor,
                )
                .expect("pipeline run");
            assert!(
                report.achieved_rel_error.max <= report.predicted_rel_bound,
                "bound violated"
            );
            println!(
                "{:>10.0e} {:>8} {:>7} {:>12.3e} {:>12.3e} {:>9.2} {:>9.2} {:>9.2}",
                tol,
                backend.name(),
                plan.format.label(),
                report.predicted_rel_bound,
                report.achieved_rel_error.max,
                report.io_gbps,
                report.exec_gbps,
                report.end_to_end_gbps,
            );
        }
    }
    println!("\nall achieved errors stayed under their predicted bounds");
}
